"""Watermark generation — Algorithm I (``WM_Generate``).

The generator wires together every stage of the FreqyWM pipeline:

1. **Histogram generation** — build the descending-frequency histogram of
   the original dataset.
2. **Eligible tokens** — sample the secret ``R``, derive per-pair moduli
   ``s_ij`` and collect the pairs whose boundaries tolerate the change.
3. **Optimal selection** — pick the watermarked pairs ``L_wm`` with the
   chosen strategy (MWM + knapsack, greedy, or random) under budget ``b``.
4. **Frequency modification** — plan and apply the ceil/floor adjustments
   that zero each pair's difference modulo ``s_ij``.
5. **Data transformation** — add/remove token instances at random
   positions so the edited dataset realises the watermarked histogram.

The result bundles the watermarked dataset (histogram and, when a raw
token sequence was supplied, the edited sequence), the secret list
``L_sc`` and per-stage diagnostics used by the evaluation harness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import GenerationConfig
from repro.core.eligibility import (
    EligiblePair,
    EligibilityContext,
    PairScanPlan,
    generate_eligible_pairs,
)
from repro.core.hashing import PairModulusCache, generate_secret
from repro.core.histogram import TokenHistogram
from repro.core.matching import SelectionResult, select_pairs
from repro.core.modification import (
    PairAdjustment,
    apply_adjustments,
    total_cost,
    verify_alignment,
)
from repro.core.secrets import WatermarkSecret
from repro.core.similarity import ranking_preserved, similarity_percent
from repro.core.tokens import TokenValue
from repro.core.transform import transform_dataset
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class WatermarkResult:
    """Everything produced by one watermark generation run.

    Attributes
    ----------
    original_histogram / watermarked_histogram:
        Token histograms before and after embedding.
    watermarked_tokens:
        The edited token sequence, or ``None`` when generation was run
        directly on a histogram (histogram-only mode).
    secret:
        The owner's secret list ``L_sc`` (pairs, ``R``, ``z``).
    selection:
        Full pair-selection diagnostics (strategy, eligible/matched/selected
        counts, final similarity).
    adjustments:
        The per-pair frequency adjustments that were applied.
    eligible_pairs:
        The eligible list ``L_e`` (useful for analysis; not secret-critical
        but derived from the secret, so treat with the same care).
    timings:
        Wall-clock seconds per pipeline stage.
    """

    original_histogram: TokenHistogram
    watermarked_histogram: TokenHistogram
    watermarked_tokens: Optional[List[str]]
    secret: WatermarkSecret
    selection: SelectionResult
    adjustments: Tuple[PairAdjustment, ...]
    eligible_pairs: Tuple[EligiblePair, ...]
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def pair_count(self) -> int:
        """Number of watermarked pairs (the paper's main size metric)."""
        return len(self.selection.selected)

    @property
    def similarity_percent(self) -> float:
        """Similarity between original and watermarked histograms (cosine, %)."""
        return similarity_percent(
            self.original_histogram.as_dict(), self.watermarked_histogram.as_dict()
        )

    @property
    def distortion_percent(self) -> float:
        """Distortion introduced by the watermark, in percent."""
        return 100.0 - self.similarity_percent

    @property
    def total_changes(self) -> int:
        """Total number of token appearances added plus removed."""
        return total_cost(self.adjustments)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI, examples and benchmarks."""
        return {
            "strategy": self.selection.strategy,
            "distinct_tokens": len(self.original_histogram),
            "eligible_pairs": len(self.eligible_pairs),
            "matched_pairs": self.selection.matched_count,
            "selected_pairs": self.pair_count,
            "similarity_percent": self.similarity_percent,
            "distortion_percent": self.distortion_percent,
            "total_changes": self.total_changes,
            "generation_seconds": sum(self.timings.values()),
        }

    # ------------------------------------------------------------------ #
    # Lean pickling
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> Dict[str, object]:
        """Pickle exactly the dataclass fields — the lean-payload contract.

        Embedding results cross the sharded-pool process boundary (one
        per dataset). The heavy lifting is done by the nested objects —
        histograms serialise through their own lean ``__getstate__``
        (token order + count vector, no derived arrays) and the secret
        drops its memoised fingerprint. Today this matches default
        pickling byte for byte; it exists to *pin* the contract, so a
        future memoised attribute set via ``object.__setattr__`` (the
        ``WatermarkSecret._fingerprint`` pattern) is excluded
        automatically instead of silently bloating every worker payload.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)


class _BatchScratch:
    """Shared derivation state of one batch embedding run.

    Holds the :class:`~repro.core.hashing.PairModulusCache` per distinct
    ``(R, z)`` (shared when many datasets are watermarked under one owner
    secret) and the :class:`~repro.core.eligibility.EligibilityContext`
    per distinct histogram object (shared when many candidate secrets are
    tried against one dataset). Both caches are value-transparent — they
    only skip recomputation — so batched outputs stay bit-identical to
    the sequential path.
    """

    #: Most-recent (R, z) derivation sets kept alive. Shared-secret
    #: batches only ever populate one; batches that sample a fresh
    #: secret per dataset (the secure default) would otherwise grow the
    #: scratch by O(candidate pairs) per dataset — each retired secret's
    #: moduli and scan plans can never hit again, so they are dropped.
    MAX_SECRETS = 4
    #: Most-recent histogram eligibility contexts kept alive. Only a
    #: repeated histogram *object* (the candidate-secrets mode) can ever
    #: hit, so a batch of distinct datasets must not pin every histogram
    #: it has already embedded.
    MAX_CONTEXTS = 8

    __slots__ = ("moduli", "contexts", "plans")

    def __init__(self) -> None:
        self.moduli: "OrderedDict[Tuple[int, int], PairModulusCache]" = OrderedDict()
        # Keyed by id(histogram); the histogram itself is kept in the
        # value so the id cannot be recycled while the entry lives.
        self.contexts: "OrderedDict[int, Tuple[TokenHistogram, EligibilityContext]]" = (
            OrderedDict()
        )
        # Per-(R, z) vectorized scan plans, keyed inside by the
        # candidate-token vocabulary (see PairScanPlan).
        self.plans: "OrderedDict[Tuple[int, int], Dict[Tuple[str, ...], PairScanPlan]]" = (
            OrderedDict()
        )

    def modulus_cache(self, secret_value: int, modulus_cap: int) -> PairModulusCache:
        key = (secret_value, modulus_cap)
        cache = self.moduli.get(key)
        if cache is None:
            cache = PairModulusCache(secret_value, modulus_cap)
            self.moduli[key] = cache
        else:
            self.moduli.move_to_end(key)
        return cache

    def plan_store(
        self, secret_value: int, modulus_cap: int
    ) -> Dict[Tuple[str, ...], PairScanPlan]:
        key = (secret_value, modulus_cap)
        store = self.plans.get(key)
        if store is None:
            store = {}
            self.plans[key] = store
        else:
            self.plans.move_to_end(key)
        return store

    def trim(self) -> None:
        """Drop all but the most recently *used* derivation state.

        Every accessor moves its key to the end (true LRU), so a shared
        secret that keeps hitting — even interleaved with freshly
        sampled ones — stays resident, while retired sampled secrets and
        the contexts of histograms that will never repeat are evicted
        first.
        """
        while len(self.moduli) > self.MAX_SECRETS:
            self.moduli.popitem(last=False)
        while len(self.plans) > self.MAX_SECRETS:
            self.plans.popitem(last=False)
        while len(self.contexts) > self.MAX_CONTEXTS:
            self.contexts.popitem(last=False)

    def context_for(
        self, histogram: TokenHistogram, config: GenerationConfig
    ) -> EligibilityContext:
        key = id(histogram)
        entry = self.contexts.get(key)
        if entry is None:
            context = EligibilityContext.build(
                histogram,
                max_candidates=config.max_candidates,
                excluded_tokens=config.excluded_tokens,
            )
            self.contexts[key] = (histogram, context)
            return context
        self.contexts.move_to_end(key)
        return entry[1]


class WatermarkGenerator:
    """Reusable ``WM_Generate`` engine configured once, applied many times.

    Parameters
    ----------
    config:
        The generation parameters (budget, modulus cap, strategy, ...).
    rng:
        Seed or generator controlling every random choice (secret sampling
        in reproducible mode, the random heuristic, insertion positions).
        ``None`` uses the OS CSPRNG for the secret — the secure default.
    """

    def __init__(self, config: Optional[GenerationConfig] = None, *, rng: RngLike = None) -> None:
        self.config = config or GenerationConfig()
        self._rng_source = rng

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        secret_value: Optional[int] = None,
    ) -> WatermarkResult:
        """Embed a watermark into ``data``.

        ``data`` may be a raw sequence of token occurrences (the normal
        case) or an already-built :class:`TokenHistogram` (histogram-only
        mode, used when the caller keeps the raw data elsewhere). An
        explicit ``secret_value`` overrides secret sampling, which the
        multi-watermarking and test code rely on.
        """
        return self._generate_one(data, secret_value, _BatchScratch())

    def generate_many(
        self,
        datasets: Sequence[Union[Sequence[TokenValue], TokenHistogram]],
        *,
        secret_values: Optional[Sequence[Optional[int]]] = None,
    ) -> List[WatermarkResult]:
        """Embed watermarks into many datasets, amortising shared work.

        Semantically this is exactly the sequential loop
        ``[self.generate(data, secret_value=sv) for data, sv in ...]`` —
        outputs are bit-identical, including every RNG-derived tie-break,
        because the same code runs per dataset in the same order. What
        the batch amortises is *derivation*, never decisions:

        * pair moduli (two SHA-256 hashes each) are cached per
          ``(R, z)`` across the whole batch, so datasets embedded under
          one owner secret re-derive nothing for vocabulary they share;
        * the inner digests ``H(R || tk_j)`` are shared even within one
          dataset (halving the hash count of a cold scan);
        * the histogram-side eligibility precomputation is cached per
          histogram object, so trying many candidate secrets against one
          dataset pays it once.

        Parameters
        ----------
        datasets:
            Raw token sequences and/or pre-built histograms, mixed
            freely. Passing the *same histogram object* several times is
            the many-candidate-secrets mode.
        secret_values:
            Optional per-dataset explicit secrets (``None`` entries fall
            back to sampling, exactly like :meth:`generate`). Must match
            ``datasets`` in length when given. A single shared secret is
            what enables cross-dataset modulus reuse.

        Returns
        -------
        list of :class:`WatermarkResult`, one per dataset, in input order.
        """
        if secret_values is not None and len(secret_values) != len(datasets):
            raise GenerationError(
                f"secret_values has {len(secret_values)} entries for "
                f"{len(datasets)} datasets"
            )
        scratch = _BatchScratch()
        results: List[WatermarkResult] = []
        for index, data in enumerate(datasets):
            secret_value = secret_values[index] if secret_values is not None else None
            results.append(self._generate_one(data, secret_value, scratch))
            # Bound the scratch: a batch that samples a fresh secret per
            # dataset retires each derivation set immediately, and
            # keeping them all would grow memory with the batch size.
            scratch.trim()
        return results

    # ------------------------------------------------------------------ #
    # Pipeline internals
    # ------------------------------------------------------------------ #

    def _generate_one(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        secret_value: Optional[int],
        scratch: _BatchScratch,
    ) -> WatermarkResult:
        """One ``WM_Generate`` run, drawing shared derivations from ``scratch``."""
        stopwatch = Stopwatch()
        tokens: Optional[Sequence[TokenValue]]
        with stopwatch.measure("histogram"):
            if isinstance(data, TokenHistogram):
                histogram, tokens = data, None
            else:
                histogram = TokenHistogram.from_tokens(data)
                tokens = data

        if len(histogram) < 2:
            raise GenerationError(
                "watermarking needs at least two distinct tokens; the dataset "
                "has a single token value"
            )

        rng = ensure_rng(self._rng_source)
        if secret_value is None:
            secret_value = generate_secret(self.config.secret_bits, rng=self._rng_source)

        with stopwatch.measure("eligibility"):
            eligible = generate_eligible_pairs(
                histogram,
                secret_value,
                self.config.modulus_cap,
                max_candidates=self.config.max_candidates,
                excluded_tokens=self.config.excluded_tokens,
                require_modification=self.config.require_modification,
                context=scratch.context_for(histogram, self.config),
                modulus_cache=scratch.modulus_cache(
                    secret_value, self.config.modulus_cap
                ),
                plan_store=scratch.plan_store(secret_value, self.config.modulus_cap),
            )

        with stopwatch.measure("selection"):
            selection = select_pairs(
                histogram,
                eligible,
                self.config.budget_percent,
                strategy=self.config.strategy,
                metric=self.config.metric,
                rng=derive_rng(self._rng_source, "selection") if self._rng_source is not None else rng,
                max_pairs=self.config.max_pairs,
            )

        with stopwatch.measure("modification"):
            adjustments = selection.adjustments
            watermarked_histogram = apply_adjustments(histogram, adjustments)
            if not verify_alignment(histogram, adjustments):
                raise GenerationError("internal error: adjusted pairs are not aligned")
            if not ranking_preserved(
                histogram.as_dict(), watermarked_histogram.as_dict()
            ):
                raise GenerationError("internal error: ranking constraint violated")

        watermarked_tokens: Optional[List[str]] = None
        if tokens is not None:
            with stopwatch.measure("transformation"):
                watermarked_tokens = transform_dataset(
                    tokens,
                    histogram,
                    watermarked_histogram,
                    rng=derive_rng(self._rng_source, "transform") if self._rng_source is not None else rng,
                )

        secret = WatermarkSecret.build(
            [item.pair for item in selection.selected],
            secret_value,
            self.config.modulus_cap,
            strategy=selection.strategy,
            budget_percent=self.config.budget_percent,
            metric=self.config.metric,
            original_size=histogram.total_count(),
            distinct_tokens=len(histogram),
        )

        return WatermarkResult(
            original_histogram=histogram,
            watermarked_histogram=watermarked_histogram,
            watermarked_tokens=watermarked_tokens,
            secret=secret,
            selection=selection,
            adjustments=adjustments,
            eligible_pairs=tuple(eligible),
            timings=stopwatch.as_dict(),
        )


def generate_watermark(
    data: Union[Sequence[TokenValue], TokenHistogram],
    *,
    budget_percent: float = 2.0,
    modulus_cap: int = 131,
    strategy: str = "optimal",
    metric: str = "cosine",
    rng: RngLike = None,
    secret_value: Optional[int] = None,
    max_candidates: Optional[int] = None,
    excluded_tokens: Sequence[str] = (),
    require_modification: bool = False,
) -> WatermarkResult:
    """Functional one-shot wrapper around :class:`WatermarkGenerator`.

    This is the primary public entry point mirroring the paper's
    ``WM_Generate(D_o, b) -> (D_w, L_sc)`` signature, with the remaining
    parameters exposed as keywords.
    """
    config = GenerationConfig(
        budget_percent=budget_percent,
        modulus_cap=modulus_cap,
        strategy=strategy,
        metric=metric,
        max_candidates=max_candidates,
        excluded_tokens=tuple(excluded_tokens),
        require_modification=require_modification,
    )
    return WatermarkGenerator(config, rng=rng).generate(data, secret_value=secret_value)


__all__ = ["WatermarkResult", "WatermarkGenerator", "generate_watermark"]
