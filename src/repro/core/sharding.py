"""Sharded batch detection across multiprocessing workers.

The vectorized :meth:`~repro.core.detector.WatermarkDetector.detect_many`
screens a whole batch in one matrix pass, but the pass is still bound to
one core — and for raw token sequences the per-dataset histogram build
dominates, which is embarrassingly parallel. This module partitions a
``detect_many`` workload across worker processes:

* the detector state travels as its *serializable inputs* (the
  :class:`~repro.core.secrets.WatermarkSecret` and
  :class:`~repro.core.config.DetectionConfig` dataclasses); every worker
  rebuilds its :class:`~repro.core.detector.WatermarkDetector` **once**
  in the pool initializer, so the SHA-256 moduli derivation is paid once
  per worker, not once per chunk;
* datasets are dispatched in contiguous chunks (each chunk is one
  vectorized ``detect_many`` call in a worker) and results are collected
  **in input order** regardless of worker scheduling;
* ``workers=1`` — and any environment where worker processes cannot be
  spawned at all — falls back to plain in-process ``detect_many``, so
  callers can hardcode the sharded entry point and still run in
  restricted sandboxes.

Verdict parity with the in-process path is exact (the workers run the
very same vectorized pass); ``tests/test_sharding.py`` asserts it,
including result ordering, and ``benchmarks/bench_streaming.py`` tracks
the multi-core speedup on the 100-dataset screening benchmark.
"""

from __future__ import annotations

import logging
import os
import warnings
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.backend import BackendLike, resolve_backend
from repro.core.batch import BatchDetectionReport
from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, SuspectData, WatermarkDetector
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError

#: Chunks dispatched per worker when ``chunk_size`` is not given: small
#: enough to load-balance uneven datasets, large enough that each chunk
#: amortises the worker round-trip over one vectorized matrix pass.
_CHUNKS_PER_WORKER = 4
#: Cap on the derived chunk size: bounds how many suspects are resident
#: per dispatch (and per in-process fallback step) for huge batches.
_MAX_CHUNK = 64

logger = logging.getLogger(__name__)

# Per-worker detector, built once by _initialize_worker. Module-level so
# the dispatched chunk function stays picklable by reference.
_WORKER_DETECTOR: Optional[WatermarkDetector] = None


def _initialize_worker(
    secret: WatermarkSecret,
    config: Optional[DetectionConfig],
    backend_name: Optional[str] = None,
) -> None:
    """Pool initializer: rebuild the detector once inside each worker.

    The backend travels by *name* (backend instances hold device handles
    and are not picklable); each worker resolves its own instance, so
    every shard runs on the same backend as the parent's detector.
    """
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = WatermarkDetector(secret, config, backend=backend_name)


def _detect_chunk(
    payload: Tuple[List[SuspectData], bool],
) -> List[DetectionResult]:
    """Run one vectorized ``detect_many`` pass over a dispatched chunk."""
    chunk, collect_evidence = payload
    if _WORKER_DETECTOR is None:  # pragma: no cover - defensive
        raise DetectionError("sharded detection worker was not initialized")
    return _WORKER_DETECTOR.detect_many(chunk, collect_evidence=collect_evidence)


def _load_suspect_files(paths: List) -> List[SuspectData]:
    """Stream-load token files into histograms (runs inside workers)."""
    # Imported lazily: repro.datasets depends on repro.core, so the
    # dependency must stay one-way at module-import time.
    from repro.datasets.loaders import load_histogram_streaming

    return [load_histogram_streaming(path) for path in paths]


def _detect_file_chunk(payload: Tuple[List, bool]) -> List[DetectionResult]:
    """Stream-load one chunk of token files and screen it in the worker."""
    paths, collect_evidence = payload
    if _WORKER_DETECTOR is None:  # pragma: no cover - defensive
        raise DetectionError("sharded detection worker was not initialized")
    return _WORKER_DETECTOR.detect_many(
        _load_suspect_files(paths), collect_evidence=collect_evidence
    )


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given: the visible cores.

    Honours CPU affinity masks (cgroup-limited containers) where the
    platform exposes them; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


class ShardedDetectionPool:
    """Partition ``detect_many`` workloads across worker processes.

    The pool owns one :class:`~repro.core.detector.WatermarkDetector`
    per worker (built once in the pool initializer from the pickled
    secret/config) and screens batches of suspected datasets by
    dispatching contiguous chunks to the workers. Results come back in
    input order with verdicts identical to the in-process path.

    Parameters
    ----------
    secret : WatermarkSecret
        The owner's secret list ``L_sc`` shared by every worker.
    config : DetectionConfig, optional
        Detection thresholds shared by the whole pool (defaults to the
        strict ``t = 0``, ``k = 50%`` setting).
    workers : int, optional
        Worker process count. ``None`` uses
        :func:`default_worker_count`; ``1`` (or a single-core machine)
        short-circuits to plain in-process detection — no processes are
        ever spawned.
    chunk_size : int, optional
        Datasets per dispatched chunk. ``None`` splits each batch into
        about four chunks per worker, balancing scheduling slack against
        per-chunk dispatch overhead.
    start_method : str, optional
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``). ``None`` uses the platform default.
    local_detector : WatermarkDetector, optional
        A prebuilt in-process detector to reuse for the ``workers=1``
        fast path and the spawn-failure fallback, skipping one moduli
        precomputation. Must have been built from the same ``secret``
        and ``config`` (the detector-caching service layer guarantees
        this by construction); when omitted a fresh detector is built.
    backend :
        Compute backend for every shard (name, instance or ``None`` for
        the ``FREQYWM_BACKEND`` / NumPy default). Workers receive the
        backend *name* through the pool initializer and resolve their
        own instance; a ``local_detector`` must already be on this
        backend.

    Examples
    --------
    >>> pool = ShardedDetectionPool(secret, workers=4)   # doctest: +SKIP
    >>> report = pool.detect_many(suspects)              # doctest: +SKIP
    >>> pool.close()                                     # doctest: +SKIP

    The pool is also a context manager (``with ShardedDetectionPool(...)
    as pool: ...``), which guarantees worker shutdown.
    """

    def __init__(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
        *,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        local_detector: Optional[WatermarkDetector] = None,
        backend: BackendLike = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise DetectionError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise DetectionError(f"chunk_size must be >= 1, got {chunk_size}")
        self.secret = secret
        self.config = config
        self.backend = resolve_backend(
            backend if backend is not None or local_detector is None
            else local_detector.backend
        )
        if local_detector is not None and local_detector.backend is not self.backend:
            raise DetectionError(
                "sharded pool was given a local detector on backend "
                f"{local_detector.backend.name!r} but backend "
                f"{self.backend.name!r} was requested"
            )
        self.workers = workers if workers is not None else default_worker_count()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self._pool = None
        # The in-process detector doubles as the workers=1 fast path and
        # the fallback when worker processes cannot be spawned.
        self._local = (
            local_detector
            if local_detector is not None
            else WatermarkDetector(secret, config, backend=self.backend)
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ShardedDetectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        """Create the worker pool lazily; None when unavailable."""
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else multiprocessing.get_context()
            )
            try:
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_initialize_worker,
                    initargs=(self.secret, self.config, self.backend.name),
                )
            except (OSError, ValueError) as error:
                # Restricted sandboxes (no /dev/shm, seccomp'd fork, ...):
                # degrade to in-process screening rather than failing the
                # whole batch — but never silently: the reason lands both
                # in the logging stream (for resident services) and as a
                # RuntimeWarning (for interactive/CLI runs).
                logger.warning(
                    "cannot start detection workers (%s: %s); "
                    "falling back to in-process detection",
                    type(error).__name__,
                    error,
                )
                warnings.warn(
                    f"cannot start detection workers ({error}); "
                    "falling back to in-process detection",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.workers = 1
        return self._pool

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _chunks(self, datasets: List[SuspectData]) -> Iterator[List[SuspectData]]:
        """Contiguous chunks in input order (ordered collection relies on it)."""
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(datasets) // (self.workers * _CHUNKS_PER_WORKER)))
            size = min(size, _MAX_CHUNK)
        for start in range(0, len(datasets), size):
            yield datasets[start : start + size]

    def _run(
        self, items: List, chunk_function, local_function, collect_evidence: bool
    ) -> BatchDetectionReport:
        """Shared dispatch: shard ``items`` or fall back to ``local_function``."""
        if not items:
            return BatchDetectionReport(results=())
        pool = None
        if self.workers > 1 and len(items) > 1:
            pool = self._ensure_pool()  # None when spawning failed
        collected: List[DetectionResult] = []
        if pool is None:
            # In-process fallback walks the same chunks as the sharded
            # path, so at most one chunk's datasets/histograms are
            # resident at a time (this is what keeps detect_files
            # memory-bounded at workers=1 too).
            for chunk in self._chunks(items):
                collected.extend(local_function(chunk, collect_evidence))
            return BatchDetectionReport(results=tuple(collected))
        payloads = [(chunk, collect_evidence) for chunk in self._chunks(items)]
        # imap yields chunk results in dispatch order, so concatenating
        # preserves the input order exactly.
        for chunk_results in pool.imap(chunk_function, payloads):
            collected.extend(chunk_results)
        return BatchDetectionReport(results=tuple(collected))

    def detect_many(
        self,
        datasets: Sequence[SuspectData],
        *,
        collect_evidence: bool = False,
    ) -> BatchDetectionReport:
        """Screen a batch of suspected datasets across the workers.

        Parameters
        ----------
        datasets : Sequence[SuspectData]
            Suspected datasets — raw token sequences or pre-built
            :class:`~repro.core.histogram.TokenHistogram` instances,
            mixed freely. Everything dispatched must be picklable.
        collect_evidence : bool, optional
            When True, per-pair evidence objects are materialised for
            every dataset (slower, larger result payloads).

        Returns
        -------
        BatchDetectionReport
            One result per dataset, **in input order**, with verdicts
            identical to in-process
            :func:`repro.core.batch.detect_many`.
        """
        return self._run(
            list(datasets),
            _detect_chunk,
            lambda items, evidence: self._local.detect_many(
                items, collect_evidence=evidence
            ),
            collect_evidence,
        )

    def detect_files(
        self,
        paths: Sequence,
        *,
        collect_evidence: bool = False,
    ) -> BatchDetectionReport:
        """Screen token-per-line files, loading each inside its worker.

        Unlike :meth:`detect_many` over pre-loaded data, only the *file
        paths* are dispatched: each worker stream-loads its chunk's
        histograms (:func:`repro.datasets.loaders.load_histogram_streaming`)
        and screens them, so the dominant per-suspect cost — reading and
        counting the tokens — parallelises too, and the parent holds
        nothing heavier than the verdicts (in the ``workers=1``
        fallback: at most one chunk of histograms at a time).

        Parameters
        ----------
        paths : Sequence
            Token-per-line file paths (anything ``open``-able and
            picklable).
        collect_evidence : bool, optional
            When True, per-pair evidence objects are materialised for
            every file.

        Returns
        -------
        BatchDetectionReport
            One result per file, in input order, with verdicts identical
            to loading each file and running the in-process path.
        """
        return self._run(
            list(paths),
            _detect_file_chunk,
            lambda items, evidence: self._local.detect_many(
                _load_suspect_files(items), collect_evidence=evidence
            ),
            collect_evidence,
        )


__all__ = ["ShardedDetectionPool", "default_worker_count"]
