"""Sharded batch detection across scheduler workers.

The vectorized :meth:`~repro.core.detector.WatermarkDetector.detect_many`
screens a whole batch in one matrix pass, but the pass is still bound to
one core — and for raw token sequences the per-dataset histogram build
dominates, which is embarrassingly parallel. This module partitions a
``detect_many`` workload across workers via the pluggable scheduler
(:mod:`repro.exec.scheduler`):

* the detector state travels as its *serializable inputs* (the
  :class:`~repro.core.secrets.WatermarkSecret` and
  :class:`~repro.core.config.DetectionConfig` dataclasses) through the
  registered ``detect.state`` initializer; every worker builds its
  :class:`~repro.core.detector.WatermarkDetector` **once** per
  ``init_key`` — the SHA-256 moduli derivation is paid once per worker,
  not once per chunk — whether the worker is a local pool process or a
  remote ``freqywm worker``;
* datasets are dispatched in contiguous chunks (each chunk is one
  vectorized ``detect_many`` call in a worker) and results are collected
  **in input order** regardless of worker scheduling;
* ``workers=1`` — and any environment where worker processes cannot be
  spawned at all — falls back to plain in-process ``detect_many``, so
  callers can hardcode the sharded entry point and still run in
  restricted sandboxes.

Verdict parity with the in-process path is exact (the workers run the
very same vectorized pass); ``tests/test_sharding.py`` asserts it,
including result ordering, and ``benchmarks/bench_streaming.py`` tracks
the multi-core speedup on the 100-dataset screening benchmark.
"""

from __future__ import annotations

import logging
import warnings
from typing import List, Optional, Sequence, Tuple

from repro.core.backend import BackendLike, resolve_backend
from repro.core.batch import BatchDetectionReport
from repro.core.config import DetectionConfig
from repro.core.detector import (
    DetectionResult,
    SuspectData,
    WatermarkDetector,
    detector_fingerprint,
)
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError
from repro.exec.blobs import dataplane_enabled, maybe_blob
from repro.exec.chunking import (
    DETECTION_CHUNKS_PER_WORKER,
    DETECTION_MAX_CHUNK,
    derive_chunk_size,
    split_chunks,
)
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs
from repro.exec.scheduler import (
    Scheduler,
    TaskSpec,
    create_scheduler,
    default_worker_count,
    register_initializer,
    register_task_function,
)
from repro.obs.logging import get_logger, log_record

#: Re-exported legacy names: the heuristic now lives in
#: :mod:`repro.exec.chunking`, shared with the embedding pool.
_CHUNKS_PER_WORKER = DETECTION_CHUNKS_PER_WORKER
_MAX_CHUNK = DETECTION_MAX_CHUNK

logger = get_logger(__name__)


def _build_detector(
    secret: WatermarkSecret,
    config: Optional[DetectionConfig],
    backend_name: Optional[str] = None,
) -> WatermarkDetector:
    """``detect.state`` initializer: build the per-worker detector.

    The backend travels by *name* (backend instances hold device handles
    and are not picklable); each worker resolves its own instance, so
    every shard runs on the same backend as the parent's detector.
    """
    return WatermarkDetector(secret, config, backend=backend_name)


def _detect_chunk(
    detector: WatermarkDetector,
    payload: Tuple[List[SuspectData], bool],
) -> List[DetectionResult]:
    """``detect.chunk`` task: one vectorized pass over a dispatched chunk."""
    chunk, collect_evidence = payload
    return detector.detect_many(chunk, collect_evidence=collect_evidence)


def _load_suspect_files(paths: List) -> List[SuspectData]:
    """Stream-load token files into histograms (runs inside workers)."""
    # Imported lazily: repro.datasets depends on repro.core, so the
    # dependency must stay one-way at module-import time.
    from repro.datasets.loaders import load_histogram_streaming

    return [load_histogram_streaming(path) for path in paths]


def _detect_file_chunk(
    detector: WatermarkDetector, payload: Tuple[List, bool]
) -> List[DetectionResult]:
    """``detect.files`` task: stream-load one chunk of files and screen it."""
    paths, collect_evidence = payload
    return detector.detect_many(
        _load_suspect_files(paths), collect_evidence=collect_evidence
    )


register_initializer("detect.state", _build_detector)
register_task_function("detect.chunk", _detect_chunk)
register_task_function("detect.files", _detect_file_chunk)


class ShardedDetectionPool:
    """Partition ``detect_many`` workloads across scheduler workers.

    The pool is a thin client of the pluggable scheduler: it owns one
    in-process :class:`~repro.core.detector.WatermarkDetector` for the
    fast path, registers the detector's serializable inputs as the
    ``detect.state`` initializer, and screens batches by dispatching
    contiguous chunks as fingerprinted tasks. Results come back in
    input order with verdicts identical to the in-process path — on the
    default local scheduler *and* on a remote worker fleet.

    Parameters
    ----------
    secret : WatermarkSecret
        The owner's secret list ``L_sc`` shared by every worker.
    config : DetectionConfig, optional
        Detection thresholds shared by the whole pool (defaults to the
        strict ``t = 0``, ``k = 50%`` setting).
    policy : ExecutionPolicy, optional
        How to parallelise — worker count, chunking, start method and
        scheduler choice in one object (the preferred configuration
        surface).
    workers : int, optional
        Deprecated alias for ``policy.workers`` (emits
        ``DeprecationWarning``). ``None`` uses
        :func:`~repro.exec.scheduler.default_worker_count`; ``1``
        short-circuits to plain in-process detection — no processes are
        ever spawned.
    chunk_size : int, optional
        Deprecated alias for ``policy.chunk_size``. ``None`` splits
        each batch into about four chunks per worker, balancing
        scheduling slack against per-chunk dispatch overhead.
    start_method : str, optional
        Deprecated alias for ``policy.start_method``.
    local_detector : WatermarkDetector, optional
        A prebuilt in-process detector to reuse for the ``workers=1``
        fast path and the spawn-failure fallback, skipping one moduli
        precomputation. Must have been built from the same ``secret``
        and ``config`` (the detector-caching service layer guarantees
        this by construction); when omitted a fresh detector is built.
    backend :
        Compute backend for every shard (name, instance or ``None`` for
        the ``FREQYWM_BACKEND`` / NumPy default). Workers receive the
        backend *name* through the initializer and resolve their own
        instance; a ``local_detector`` must already be on this backend.
    scheduler : Scheduler, optional
        A prebuilt scheduler to dispatch through (e.g. a shared
        :class:`~repro.exec.remote.RemoteScheduler`); the pool then does
        not own its lifecycle and ``close()`` leaves it running.

    Examples
    --------
    >>> pool = ShardedDetectionPool(secret, workers=4)   # doctest: +SKIP
    >>> report = pool.detect_many(suspects)              # doctest: +SKIP
    >>> pool.close()                                     # doctest: +SKIP

    The pool is also a context manager (``with ShardedDetectionPool(...)
    as pool: ...``), which guarantees worker shutdown.
    """

    def __init__(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
        *,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        local_detector: Optional[WatermarkDetector] = None,
        backend: BackendLike = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise DetectionError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise DetectionError(f"chunk_size must be >= 1, got {chunk_size}")
        self.policy = policy_from_kwargs(
            policy,
            workers=workers,
            chunk_size=chunk_size,
            start_method=start_method,
            caller="ShardedDetectionPool",
        )
        self.secret = secret
        self.config = config
        resolved = backend if backend is not None else self.policy.backend
        self.backend = resolve_backend(
            resolved if resolved is not None or local_detector is None
            else local_detector.backend
        )
        if local_detector is not None and local_detector.backend is not self.backend:
            raise DetectionError(
                "sharded pool was given a local detector on backend "
                f"{local_detector.backend.name!r} but backend "
                f"{self.backend.name!r} was requested"
            )
        self.chunk_size = self.policy.chunk_size
        self.start_method = self.policy.start_method
        # The in-process detector doubles as the workers=1 fast path and
        # the fallback when worker processes cannot be spawned.
        self._local = (
            local_detector
            if local_detector is not None
            else WatermarkDetector(secret, config, backend=self.backend)
        )
        self._init_key = detector_fingerprint(secret, config, self.backend)
        if scheduler is not None:
            self._scheduler = scheduler
            self._owns_scheduler = False
        else:
            self._scheduler = create_scheduler(
                self.policy,
                on_spawn_failure=self._spawn_failure,
                inline_state={self._init_key: self._local},
            )
            self._owns_scheduler = True

    def _spawn_failure(self, error: BaseException) -> None:
        """Spawn-failure hook: keep the historical detection warnings.

        Restricted sandboxes (no /dev/shm, seccomp'd fork, ...) degrade
        to in-process screening rather than failing the whole batch —
        but never silently: the reason lands both in the logging stream
        (for resident services) and as a RuntimeWarning (for
        interactive/CLI runs).
        """
        log_record(
            logger,
            logging.WARNING,
            "cannot start detection workers; falling back to in-process "
            f"detection ({type(error).__name__}: {error})",
            error=str(error),
            error_type=type(error).__name__,
        )
        warnings.warn(
            f"cannot start detection workers ({error}); "
            "falling back to in-process detection",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        """Effective worker count (drops to 1 after a spawn failure)."""
        return self._scheduler.workers

    @property
    def _pool(self):
        """The scheduler's live worker pool, None until (re)spawned."""
        return getattr(self._scheduler, "_pool", None)

    def __enter__(self) -> "ShardedDetectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down owned workers (idempotent; the pool respawns lazily)."""
        if self._owns_scheduler:
            self._scheduler.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _specs(
        self, items: List, function: str, collect_evidence: bool
    ) -> List[TaskSpec]:
        """One fingerprinted task per contiguous chunk, in input order.

        When the scheduler actually ships payloads to other processes
        (pool or remote fleet) and the data plane is on, the shared
        secret — identical in *every* task's ``init_args`` — and each
        large chunk travel as blob refs: the secret crosses the
        transport once per worker instead of once per chunk, and chunk
        arrays ride shared memory / binary frames instead of base64.
        Inline execution keeps plain values (zero extra copies).
        """
        size = derive_chunk_size(
            len(items),
            self.workers,
            chunk_size=self.chunk_size,
            chunks_per_worker=DETECTION_CHUNKS_PER_WORKER,
            max_chunk=DETECTION_MAX_CHUNK,
        )
        use_blobs = dataplane_enabled() and self._scheduler.ships_payloads
        secret_value, secret_refs = (self.secret, ())
        if use_blobs:
            secret_value, secret_refs = maybe_blob(self.secret)
        specs: List[TaskSpec] = []
        for index, chunk in enumerate(split_chunks(items, size)):
            chunk_value, chunk_refs = (chunk, ())
            if use_blobs:
                chunk_value, chunk_refs = maybe_blob(chunk)
            specs.append(
                TaskSpec(
                    fingerprint=f"{self._init_key}:{function}:{index}",
                    function=function,
                    payload=(chunk_value, collect_evidence),
                    initializer="detect.state",
                    init_key=self._init_key,
                    init_args=(secret_value, self.config, self.backend.name),
                    blob_refs=secret_refs + chunk_refs,
                )
            )
        return specs

    def _run(
        self, items: List, function: str, collect_evidence: bool
    ) -> BatchDetectionReport:
        """Shared dispatch: chunk ``items`` and gather in input order.

        The scheduler walks the same chunks in-process when it cannot
        (or need not) shard, so at most one chunk's datasets/histograms
        are resident at a time — this is what keeps ``detect_files``
        memory-bounded at ``workers=1`` too.
        """
        if not items:
            return BatchDetectionReport(results=())
        collected: List[DetectionResult] = []
        for chunk_results in self._scheduler.run(
            self._specs(items, function, collect_evidence)
        ):
            collected.extend(chunk_results)
        return BatchDetectionReport(results=tuple(collected))

    def detect_many(
        self,
        datasets: Sequence[SuspectData],
        *,
        collect_evidence: bool = False,
    ) -> BatchDetectionReport:
        """Screen a batch of suspected datasets across the workers.

        Parameters
        ----------
        datasets : Sequence[SuspectData]
            Suspected datasets — raw token sequences or pre-built
            :class:`~repro.core.histogram.TokenHistogram` instances,
            mixed freely. Everything dispatched must be picklable.
        collect_evidence : bool, optional
            When True, per-pair evidence objects are materialised for
            every dataset (slower, larger result payloads).

        Returns
        -------
        BatchDetectionReport
            One result per dataset, **in input order**, with verdicts
            identical to in-process
            :func:`repro.core.batch.detect_many`.
        """
        return self._run(list(datasets), "detect.chunk", collect_evidence)

    def detect_files(
        self,
        paths: Sequence,
        *,
        collect_evidence: bool = False,
    ) -> BatchDetectionReport:
        """Screen token-per-line files, loading each inside its worker.

        Unlike :meth:`detect_many` over pre-loaded data, only the *file
        paths* are dispatched: each worker stream-loads its chunk's
        histograms (:func:`repro.datasets.loaders.load_histogram_streaming`)
        and screens them, so the dominant per-suspect cost — reading and
        counting the tokens — parallelises too, and the parent holds
        nothing heavier than the verdicts (in the ``workers=1``
        fallback: at most one chunk of histograms at a time).

        Parameters
        ----------
        paths : Sequence
            Token-per-line file paths (anything ``open``-able and
            picklable).
        collect_evidence : bool, optional
            When True, per-pair evidence objects are materialised for
            every file.

        Returns
        -------
        BatchDetectionReport
            One result per file, in input order, with verdicts identical
            to loading each file and running the in-process path.
        """
        return self._run(list(paths), "detect.files", collect_evidence)


__all__ = ["ShardedDetectionPool", "default_worker_count"]
