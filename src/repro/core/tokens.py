"""Token abstraction used throughout the FreqyWM pipeline.

A *token* in the paper is "a word, a database record, a URL, or any
repeating value within a structured or semi-structured commercial
dataset". The watermarking algorithms only ever need a stable, hashable,
canonical string form of each token (the hash-based modulus ``s_ij`` is
computed from the token's bytes), so this module provides:

* :func:`canonical_token` — turn an arbitrary hashable value (string,
  number, tuple of attribute values for multi-dimensional tokens) into a
  canonical string that is stable across processes.
* :class:`TokenPair` — an ordered pair of tokens where the first element
  is always the higher-frequency token, as used by the eligibility,
  matching, modification and detection stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence, Tuple, Union

TokenValue = Hashable
#: Separator used when composing multi-attribute tokens into one string.
MULTI_ATTRIBUTE_SEPARATOR = "\x1f"


def canonical_token(value: TokenValue) -> str:
    """Return the canonical string form of a token value.

    Strings are returned unchanged; bytes are decoded as UTF-8 with
    replacement; tuples/lists (multi-dimensional tokens) are joined with a
    non-printable separator so that ``("a", "bc")`` and ``("ab", "c")``
    remain distinct; every other value uses its ``repr``-free ``str`` form.

    The mapping must be injective for the tokens present in one dataset:
    two distinct raw values that stringify identically (for example the
    integer ``1`` and the string ``"1"``) would collapse into a single
    histogram bucket, which is the standard behaviour for CSV-sourced data.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    if isinstance(value, (tuple, list)):
        return MULTI_ATTRIBUTE_SEPARATOR.join(canonical_token(part) for part in value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def compose_token(values: Sequence[TokenValue]) -> str:
    """Compose a multi-dimensional token from several attribute values.

    This implements the paper's Section IV-C where a token may be the
    combination of multiple attributes (for example ``[Age, WorkClass]``
    in the Adult dataset).
    """
    return canonical_token(tuple(values))


def decompose_token(token: str) -> Tuple[str, ...]:
    """Split a composed multi-dimensional token back into its attributes."""
    return tuple(token.split(MULTI_ATTRIBUTE_SEPARATOR))


@dataclass(frozen=True, order=True)
class TokenPair:
    """An ordered pair of distinct tokens.

    ``first`` always refers to the token with the higher (or equal)
    original frequency so that the frequency difference ``f_first -
    f_second`` used in the modulo rule is non-negative. Instances are
    immutable and hashable so they can be stored in the secret list
    ``L_wm`` and used as dictionary keys by the matching algorithms.
    """

    first: str
    second: str

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ValueError("a watermark pair must contain two distinct tokens")

    def as_tuple(self) -> Tuple[str, str]:
        """Return ``(first, second)``."""
        return (self.first, self.second)

    def contains(self, token: str) -> bool:
        """Whether ``token`` is one of the two pair members."""
        return token in (self.first, self.second)

    def other(self, token: str) -> str:
        """Return the member of the pair that is not ``token``."""
        if token == self.first:
            return self.second
        if token == self.second:
            return self.first
        raise KeyError(f"{token!r} is not part of this pair")

    @staticmethod
    def ordered(
        token_a: TokenValue,
        token_b: TokenValue,
        frequency_a: int,
        frequency_b: int,
    ) -> "TokenPair":
        """Build a pair placing the higher-frequency token first.

        Ties are broken lexicographically so the ordering is deterministic
        for a given histogram regardless of insertion order.
        """
        a, b = canonical_token(token_a), canonical_token(token_b)
        if (frequency_a, b) >= (frequency_b, a):
            return TokenPair(a, b)
        return TokenPair(b, a)


def unique_tokens(values: Iterable[TokenValue]) -> Tuple[str, ...]:
    """Canonicalise ``values`` preserving first-seen order and uniqueness."""
    seen = {}
    for value in values:
        token = canonical_token(value)
        if token not in seen:
            seen[token] = None
    return tuple(seen)


PairLike = Union[TokenPair, Tuple[str, str]]


def as_token_pair(pair: PairLike) -> TokenPair:
    """Coerce a ``(first, second)`` tuple into a :class:`TokenPair`."""
    if isinstance(pair, TokenPair):
        return pair
    first, second = pair
    return TokenPair(canonical_token(first), canonical_token(second))


__all__ = [
    "TokenValue",
    "MULTI_ATTRIBUTE_SEPARATOR",
    "canonical_token",
    "compose_token",
    "decompose_token",
    "TokenPair",
    "unique_tokens",
    "PairLike",
    "as_token_pair",
]
