"""Batch embedding: ``WM_Generate`` over many datasets at scale.

PRs 1–3 made *detection* batched, sharded and serveable; this module does
the same for the embedding side. Two independent levers compose:

* **In-process amortisation** —
  :meth:`repro.core.generator.WatermarkGenerator.generate_many` shares
  the SHA-256 pair-modulus derivations (per owner secret) and the
  histogram-side eligibility precomputation (per dataset) across a whole
  batch, with outputs bit-identical to the sequential loop;
* **Worker sharding** — :class:`ShardedEmbeddingPool` partitions a
  batch across scheduler workers the way
  :class:`~repro.core.sharding.ShardedDetectionPool` does for detection:
  every worker builds its :class:`~repro.core.generator.WatermarkGenerator`
  once per ``init_key`` via the registered ``embed.state`` initializer,
  chunks are dispatched in input order, and results come back in input
  order — on the default local scheduler or a remote worker fleet.
  ``workers=1`` — and any environment where processes cannot be
  spawned — falls back in-process.

Sharded embedding requires the generator's randomness source to be a
plain seed (or ``None``): an ``int`` seed reproduces per dataset rather
than threading one mutable stream through the batch, so the outcome is
independent of which worker embeds which dataset — exactly the property
that makes the sharded results equal to the sequential ones. A live
:class:`numpy.random.Generator` cannot give that guarantee and is
rejected.

``tests/test_embedding.py`` asserts batched/sharded parity (including a
hypothesis sweep over arbitrary dataset lists) and
``benchmarks/bench_embed_many.py`` tracks the amortisation speedup.
"""

from __future__ import annotations

import hashlib
import json
import logging
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenValue
from repro.exceptions import GenerationError
from repro.exec.blobs import dataplane_enabled, maybe_blob
from repro.exec.chunking import chunk_spans, derive_chunk_size
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs
from repro.exec.scheduler import (
    Scheduler,
    TaskSpec,
    create_scheduler,
    register_initializer,
    register_task_function,
)
from repro.obs.logging import get_logger, log_record

#: A dataset to embed: a raw token sequence or a pre-built histogram.
EmbedData = Union[Sequence[TokenValue], TokenHistogram]

logger = get_logger(__name__)


def generator_fingerprint(
    config: Optional[GenerationConfig], seed: Optional[int]
) -> str:
    """Stable cache key for a ``(config, seed)`` generator build.

    The scheduler caches initializer products per ``init_key`` — two
    pools sharing a configuration and seed share one worker-side
    generator, while any differing field forces a rebuild.
    """
    resolved = config or GenerationConfig()
    payload = json.dumps(
        {"config": asdict(resolved), "seed": seed},
        sort_keys=True,
        default=str,
    )
    return "gen-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _build_generator(
    config: Optional[GenerationConfig], seed: Optional[int]
) -> WatermarkGenerator:
    """``embed.state`` initializer: build the per-worker generator."""
    return WatermarkGenerator(config, rng=seed)


def _embed_chunk(
    generator: WatermarkGenerator,
    payload: Tuple[List[EmbedData], Optional[List[Optional[int]]]],
) -> List[WatermarkResult]:
    """``embed.chunk`` task: one ``generate_many`` pass over a chunk."""
    chunk, secret_values = payload
    return generator.generate_many(chunk, secret_values=secret_values)


def _embed_one_file(
    generator: WatermarkGenerator,
    path: Path,
    output_dir: Path,
    secret_dir: Path,
) -> Dict[str, object]:
    """Watermark one token file, writing the edited file and its secret.

    With a seeded generator the per-file randomness is re-derived from
    ``(seed, file name)``: a constant seed re-applied verbatim would
    hand every file the *same* secret ``R``, and the per-buyer tracing
    workflow collapses the moment one recipient's secret list reveals
    the ``R`` behind everyone else's watermark. Deriving per file keeps
    the run reproducible (same seed + same file -> same watermark)
    while every file still gets an independent secret.
    """
    # Imported lazily: repro.datasets depends on repro.core, so the
    # dependency must stay one-way at module-import time.
    from repro.datasets.loaders import load_token_file, save_token_file
    from repro.utils.rng import derive_rng

    if generator._rng_source is not None:
        generator = WatermarkGenerator(
            generator.config,
            rng=derive_rng(generator._rng_source, "embed-file", path.name),
        )
    tokens = load_token_file(path)
    result = generator.generate(tokens)
    output_path = output_dir / path.name
    secret_path = secret_dir / (path.name + ".json")
    assert result.watermarked_tokens is not None  # raw-token mode
    save_token_file(result.watermarked_tokens, output_path)
    result.secret.save(secret_path)
    summary = result.summary()
    summary["input"] = str(path)
    summary["output"] = str(output_path)
    summary["secret_file"] = str(secret_path)
    return summary


def _embed_file_chunk(
    generator: WatermarkGenerator,
    payload: Tuple[List[Path], Path, Path],
) -> List[Dict[str, object]]:
    """``embed.files`` task: watermark one chunk of token files."""
    paths, output_dir, secret_dir = payload
    return [
        _embed_one_file(generator, path, output_dir, secret_dir)
        for path in paths
    ]


register_initializer("embed.state", _build_generator)
register_task_function("embed.chunk", _embed_chunk)
register_task_function("embed.files", _embed_file_chunk)


@dataclass(frozen=True)
class BatchEmbeddingReport:
    """Outcome of embedding a batch of datasets.

    Attributes
    ----------
    results:
        One :class:`~repro.core.generator.WatermarkResult` per input
        dataset, in input order.
    """

    results: Tuple[WatermarkResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> WatermarkResult:
        return self.results[index]

    @property
    def secrets(self) -> Tuple[object, ...]:
        """Per-dataset secret lists ``L_sc``, aligned with the input order."""
        return tuple(result.secret for result in self.results)

    @property
    def watermarked_histograms(self) -> Tuple[TokenHistogram, ...]:
        """Per-dataset watermarked histograms, aligned with the input order."""
        return tuple(result.watermarked_histogram for result in self.results)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        total = len(self.results)
        return {
            "datasets": total,
            "selected_pairs_total": sum(result.pair_count for result in self.results),
            "mean_selected_pairs": (
                sum(result.pair_count for result in self.results) / total
                if total
                else 0.0
            ),
            "mean_distortion_percent": (
                sum(result.distortion_percent for result in self.results) / total
                if total
                else 0.0
            ),
            "total_changes": sum(result.total_changes for result in self.results),
        }


class ShardedEmbeddingPool:
    """Partition batch embedding workloads across scheduler workers.

    A thin client of the pluggable scheduler: every worker owns one
    :class:`~repro.core.generator.WatermarkGenerator` (built once per
    ``init_key`` by the registered ``embed.state`` initializer from the
    pickled configuration and seed) and batches are embedded by
    dispatching contiguous chunks as fingerprinted tasks. Results come
    back in input order and are bit-identical to the in-process
    sequential loop.

    Parameters
    ----------
    config : GenerationConfig, optional
        Generation parameters shared by every worker.
    seed : int, optional
        Seed for the per-worker randomness source. ``None`` uses the OS
        CSPRNG for secret sampling (the secure default; results are then
        not reproducible, sequentially or sharded). A live
        :class:`numpy.random.Generator` is *not* accepted: its mutable
        state cannot be split across processes deterministically.
    policy : ExecutionPolicy, optional
        How to parallelise — worker count, chunking, start method and
        scheduler choice in one object (the preferred configuration
        surface).
    workers : int, optional
        Deprecated alias for ``policy.workers`` (emits
        ``DeprecationWarning``). ``None`` uses
        :func:`~repro.exec.scheduler.default_worker_count`; ``1``
        short-circuits in-process — no processes are ever spawned.
    chunk_size : int, optional
        Deprecated alias for ``policy.chunk_size``. ``None`` splits
        each batch into one chunk per worker — embedding chunks should
        be as large as possible so the per-chunk modulus cache amortises
        across many datasets.
    start_method : str, optional
        Deprecated alias for ``policy.start_method``.
    scheduler : Scheduler, optional
        A prebuilt scheduler to dispatch through; the pool then does not
        own its lifecycle and ``close()`` leaves it running.
    """

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        *,
        seed: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise GenerationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
        if isinstance(seed, np.random.Generator):
            raise GenerationError(
                "sharded embedding needs a plain integer seed (or None): a "
                "live Generator cannot reproduce deterministically across "
                "worker processes"
            )
        self.policy = policy_from_kwargs(
            policy,
            workers=workers,
            chunk_size=chunk_size,
            start_method=start_method,
            caller="ShardedEmbeddingPool",
        )
        self.config = config or GenerationConfig()
        self.seed = seed
        self.chunk_size = self.policy.chunk_size
        self.start_method = self.policy.start_method
        self._local = WatermarkGenerator(self.config, rng=seed)
        self._init_key = generator_fingerprint(self.config, seed)
        if scheduler is not None:
            self._scheduler = scheduler
            self._owns_scheduler = False
        else:
            self._scheduler = create_scheduler(
                self.policy,
                on_spawn_failure=self._spawn_failure,
                inline_state={self._init_key: self._local},
            )
            self._owns_scheduler = True

    def _spawn_failure(self, error: BaseException) -> None:
        """Spawn-failure hook: same degradation contract as detection.

        Restricted sandboxes fall back in-process, loudly — the reason
        lands in the logging stream and as a RuntimeWarning.
        """
        log_record(
            logger,
            logging.WARNING,
            "cannot start embedding workers; falling back to in-process "
            f"embedding ({type(error).__name__}: {error})",
            error=str(error),
            error_type=type(error).__name__,
        )
        warnings.warn(
            f"cannot start embedding workers ({error}); "
            "falling back to in-process embedding",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        """Effective worker count (drops to 1 after a spawn failure)."""
        return self._scheduler.workers

    @property
    def _pool(self):
        """The scheduler's live worker pool, None until (re)spawned."""
        return getattr(self._scheduler, "_pool", None)

    def __enter__(self) -> "ShardedEmbeddingPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down owned workers (idempotent; the pool respawns lazily)."""
        if self._owns_scheduler:
            self._scheduler.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _spec(
        self,
        function: str,
        payload,
        index: int,
        blob_refs: Tuple[str, ...] = (),
    ) -> TaskSpec:
        """One fingerprinted chunk task bound to this pool's generator."""
        return TaskSpec(
            fingerprint=f"{self._init_key}:{function}:{index}",
            function=function,
            payload=payload,
            initializer="embed.state",
            init_key=self._init_key,
            init_args=(self.config, self.seed),
            blob_refs=blob_refs,
        )

    def _chunk_size(self, n_items: int) -> int:
        """Embedding's chunk size: one chunk per worker unless overridden.

        Unlike detection's many-small-chunks default, embedding defaults
        to one chunk per worker: each chunk shares one modulus cache, so
        bigger chunks amortise more (and per-dataset embedding cost is
        far more uniform than suspect-file sizes).
        """
        return derive_chunk_size(
            n_items, self.workers, chunk_size=self.chunk_size
        )

    def embed_many(
        self,
        datasets: Sequence[EmbedData],
        *,
        secret_values: Optional[Sequence[Optional[int]]] = None,
    ) -> BatchEmbeddingReport:
        """Embed a batch of datasets across the workers.

        Parameters
        ----------
        datasets : Sequence[EmbedData]
            Raw token sequences and/or pre-built histograms, mixed
            freely. Everything dispatched must be picklable.
        secret_values : Sequence[int | None], optional
            Per-dataset explicit secrets, aligned with ``datasets``
            (see :meth:`WatermarkGenerator.generate_many`).

        Returns
        -------
        BatchEmbeddingReport
            One result per dataset, **in input order**, bit-identical to
            the sequential in-process loop.
        """
        if secret_values is not None and len(secret_values) != len(datasets):
            raise GenerationError(
                f"secret_values has {len(secret_values)} entries for "
                f"{len(datasets)} datasets"
            )
        items = list(datasets)
        if not items:
            return BatchEmbeddingReport(results=())
        values = list(secret_values) if secret_values is not None else None
        if self.workers > 1 and len(items) > 1:
            size = self._chunk_size(len(items))
            use_blobs = dataplane_enabled() and self._scheduler.ships_payloads
            specs = []
            for index, (start, stop) in enumerate(chunk_spans(len(items), size)):
                chunk: object = items[start:stop]
                chunk_refs: Tuple[str, ...] = ()
                if use_blobs:
                    # Large chunks travel as content-addressed blobs so the
                    # local shm transport can ship them zero-copy.
                    chunk, chunk_refs = maybe_blob(chunk)
                specs.append(
                    self._spec(
                        "embed.chunk",
                        (chunk, values[start:stop] if values else None),
                        index,
                        blob_refs=chunk_refs,
                    )
                )
        else:
            # One whole-batch task: the in-process fast path keeps the
            # full cross-dataset amortisation of generate_many.
            specs = [self._spec("embed.chunk", (items, values), 0)]
        collected: List[WatermarkResult] = []
        for chunk_results in self._scheduler.run(specs):
            collected.extend(chunk_results)
        return BatchEmbeddingReport(results=tuple(collected))

    def embed_files(
        self,
        paths: Sequence[Union[str, Path]],
        output_dir: Union[str, Path],
        secret_dir: Union[str, Path],
    ) -> List[Dict[str, object]]:
        """Watermark token-per-line files, each loaded inside its worker.

        Only the file *paths* are dispatched: each worker loads its
        chunk's token sequences, embeds them, and writes the watermarked
        file (same name under ``output_dir``) and the secret list
        (``<name>.json`` under ``secret_dir``) itself — so the dominant
        read/embed/write cost parallelises and the parent only collects
        flat per-file summaries.

        Every file receives its **own** secret ``R``. With a seeded pool
        the per-file randomness is derived from ``(seed, file name)`` —
        reproducible, but never shared between files, so one recipient's
        secret list reveals nothing about another file's watermark.

        Returns
        -------
        list of dict
            One :meth:`WatermarkResult.summary` per file (plus
            ``input`` / ``output`` / ``secret_file`` paths), in input
            order.
        """
        items = [Path(path) for path in paths]
        if not items:
            return []
        out_dir = Path(output_dir)
        sec_dir = Path(secret_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        sec_dir.mkdir(parents=True, exist_ok=True)
        size = self._chunk_size(len(items))
        specs = [
            self._spec("embed.files", (items[start:stop], out_dir, sec_dir), index)
            for index, (start, stop) in enumerate(chunk_spans(len(items), size))
        ]
        collected: List[Dict[str, object]] = []
        for chunk_results in self._scheduler.run(specs):
            collected.extend(chunk_results)
        return collected


__all__ = [
    "EmbedData",
    "BatchEmbeddingReport",
    "ShardedEmbeddingPool",
    "generator_fingerprint",
]
