"""Batch embedding: ``WM_Generate`` over many datasets at scale.

PRs 1–3 made *detection* batched, sharded and serveable; this module does
the same for the embedding side. Two independent levers compose:

* **In-process amortisation** —
  :meth:`repro.core.generator.WatermarkGenerator.generate_many` shares
  the SHA-256 pair-modulus derivations (per owner secret) and the
  histogram-side eligibility precomputation (per dataset) across a whole
  batch, with outputs bit-identical to the sequential loop;
* **Process sharding** — :class:`ShardedEmbeddingPool` partitions a
  batch across worker processes the way
  :class:`~repro.core.sharding.ShardedDetectionPool` does for detection:
  every worker builds its :class:`~repro.core.generator.WatermarkGenerator`
  once from the pickled configuration, chunks are dispatched in input
  order, and results come back in input order. ``workers=1`` — and any
  environment where processes cannot be spawned — falls back in-process.

Sharded embedding requires the generator's randomness source to be a
plain seed (or ``None``): an ``int`` seed reproduces per dataset rather
than threading one mutable stream through the batch, so the outcome is
independent of which worker embeds which dataset — exactly the property
that makes the sharded results equal to the sequential ones. A live
:class:`numpy.random.Generator` cannot give that guarantee and is
rejected for ``workers > 1``.

``tests/test_embedding.py`` asserts batched/sharded parity (including a
hypothesis sweep over arbitrary dataset lists) and
``benchmarks/bench_embed_many.py`` tracks the amortisation speedup.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenValue
from repro.exceptions import GenerationError

#: A dataset to embed: a raw token sequence or a pre-built histogram.
EmbedData = Union[Sequence[TokenValue], TokenHistogram]

logger = logging.getLogger(__name__)

# Per-worker generator, built once by _initialize_worker. Module-level so
# the dispatched chunk functions stay picklable by reference.
_WORKER_GENERATOR: Optional[WatermarkGenerator] = None


def _initialize_worker(config: Optional[GenerationConfig], seed: Optional[int]) -> None:
    """Pool initializer: build the generator once inside each worker."""
    global _WORKER_GENERATOR
    _WORKER_GENERATOR = WatermarkGenerator(config, rng=seed)


def _embed_chunk(
    payload: Tuple[List[EmbedData], Optional[List[Optional[int]]]],
) -> List[WatermarkResult]:
    """Run one ``generate_many`` pass over a dispatched chunk."""
    chunk, secret_values = payload
    if _WORKER_GENERATOR is None:  # pragma: no cover - defensive
        raise GenerationError("sharded embedding worker was not initialized")
    return _WORKER_GENERATOR.generate_many(chunk, secret_values=secret_values)


def _embed_one_file(
    generator: WatermarkGenerator,
    path: Path,
    output_dir: Path,
    secret_dir: Path,
) -> Dict[str, object]:
    """Watermark one token file, writing the edited file and its secret.

    With a seeded generator the per-file randomness is re-derived from
    ``(seed, file name)``: a constant seed re-applied verbatim would
    hand every file the *same* secret ``R``, and the per-buyer tracing
    workflow collapses the moment one recipient's secret list reveals
    the ``R`` behind everyone else's watermark. Deriving per file keeps
    the run reproducible (same seed + same file -> same watermark)
    while every file still gets an independent secret.
    """
    # Imported lazily: repro.datasets depends on repro.core, so the
    # dependency must stay one-way at module-import time.
    from repro.datasets.loaders import load_token_file, save_token_file
    from repro.utils.rng import derive_rng

    if generator._rng_source is not None:
        generator = WatermarkGenerator(
            generator.config,
            rng=derive_rng(generator._rng_source, "embed-file", path.name),
        )
    tokens = load_token_file(path)
    result = generator.generate(tokens)
    output_path = output_dir / path.name
    secret_path = secret_dir / (path.name + ".json")
    assert result.watermarked_tokens is not None  # raw-token mode
    save_token_file(result.watermarked_tokens, output_path)
    result.secret.save(secret_path)
    summary = result.summary()
    summary["input"] = str(path)
    summary["output"] = str(output_path)
    summary["secret_file"] = str(secret_path)
    return summary


def _embed_file_chunk(
    payload: Tuple[List[Path], Path, Path],
) -> List[Dict[str, object]]:
    """Watermark one chunk of token files inside a worker."""
    paths, output_dir, secret_dir = payload
    if _WORKER_GENERATOR is None:  # pragma: no cover - defensive
        raise GenerationError("sharded embedding worker was not initialized")
    return [
        _embed_one_file(_WORKER_GENERATOR, path, output_dir, secret_dir)
        for path in paths
    ]


@dataclass(frozen=True)
class BatchEmbeddingReport:
    """Outcome of embedding a batch of datasets.

    Attributes
    ----------
    results:
        One :class:`~repro.core.generator.WatermarkResult` per input
        dataset, in input order.
    """

    results: Tuple[WatermarkResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> WatermarkResult:
        return self.results[index]

    @property
    def secrets(self) -> Tuple[object, ...]:
        """Per-dataset secret lists ``L_sc``, aligned with the input order."""
        return tuple(result.secret for result in self.results)

    @property
    def watermarked_histograms(self) -> Tuple[TokenHistogram, ...]:
        """Per-dataset watermarked histograms, aligned with the input order."""
        return tuple(result.watermarked_histogram for result in self.results)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        total = len(self.results)
        return {
            "datasets": total,
            "selected_pairs_total": sum(result.pair_count for result in self.results),
            "mean_selected_pairs": (
                sum(result.pair_count for result in self.results) / total
                if total
                else 0.0
            ),
            "mean_distortion_percent": (
                sum(result.distortion_percent for result in self.results) / total
                if total
                else 0.0
            ),
            "total_changes": sum(result.total_changes for result in self.results),
        }


class ShardedEmbeddingPool:
    """Partition batch embedding workloads across worker processes.

    The pool owns one :class:`~repro.core.generator.WatermarkGenerator`
    per worker (built once in the pool initializer from the pickled
    configuration and seed) and embeds batches by dispatching contiguous
    chunks. Results come back in input order and are bit-identical to
    the in-process sequential loop.

    Parameters
    ----------
    config : GenerationConfig, optional
        Generation parameters shared by every worker.
    seed : int, optional
        Seed for the per-worker randomness source. ``None`` uses the OS
        CSPRNG for secret sampling (the secure default; results are then
        not reproducible, sequentially or sharded). A live
        :class:`numpy.random.Generator` is *not* accepted: its mutable
        state cannot be split across processes deterministically.
    workers : int, optional
        Worker process count. ``None`` uses
        :func:`~repro.core.sharding.default_worker_count`; ``1``
        short-circuits in-process — no processes are ever spawned.
    chunk_size : int, optional
        Datasets per dispatched chunk. ``None`` splits each batch into
        one chunk per worker — embedding chunks should be as large as
        possible so the per-chunk modulus cache amortises across many
        datasets.
    start_method : str, optional
        ``multiprocessing`` start method; ``None`` uses the platform
        default.
    """

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        *,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise GenerationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
        if isinstance(seed, np.random.Generator):
            raise GenerationError(
                "sharded embedding needs a plain integer seed (or None): a "
                "live Generator cannot reproduce deterministically across "
                "worker processes"
            )
        from repro.core.sharding import default_worker_count

        self.config = config or GenerationConfig()
        self.seed = seed
        self.workers = workers if workers is not None else default_worker_count()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self._pool = None
        self._local = WatermarkGenerator(self.config, rng=seed)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ShardedEmbeddingPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        """Create the worker pool lazily; None when unavailable."""
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else multiprocessing.get_context()
            )
            try:
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_initialize_worker,
                    initargs=(self.config, self.seed),
                )
            except (OSError, ValueError) as error:
                # Same degradation contract as ShardedDetectionPool:
                # restricted sandboxes fall back in-process, loudly.
                logger.warning(
                    "cannot start embedding workers (%s: %s); "
                    "falling back to in-process embedding",
                    type(error).__name__,
                    error,
                )
                warnings.warn(
                    f"cannot start embedding workers ({error}); "
                    "falling back to in-process embedding",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.workers = 1
        return self._pool

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _chunks(self, items: List) -> Iterator[List]:
        """Contiguous chunks in input order (ordered collection relies on it).

        Unlike detection's many-small-chunks default, embedding defaults
        to one chunk per worker: each chunk shares one modulus cache, so
        bigger chunks amortise more (and per-dataset embedding cost is
        far more uniform than suspect-file sizes).
        """
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // self.workers))
        for start in range(0, len(items), size):
            yield items[start : start + size]

    def embed_many(
        self,
        datasets: Sequence[EmbedData],
        *,
        secret_values: Optional[Sequence[Optional[int]]] = None,
    ) -> BatchEmbeddingReport:
        """Embed a batch of datasets across the workers.

        Parameters
        ----------
        datasets : Sequence[EmbedData]
            Raw token sequences and/or pre-built histograms, mixed
            freely. Everything dispatched must be picklable.
        secret_values : Sequence[int | None], optional
            Per-dataset explicit secrets, aligned with ``datasets``
            (see :meth:`WatermarkGenerator.generate_many`).

        Returns
        -------
        BatchEmbeddingReport
            One result per dataset, **in input order**, bit-identical to
            the sequential in-process loop.
        """
        if secret_values is not None and len(secret_values) != len(datasets):
            raise GenerationError(
                f"secret_values has {len(secret_values)} entries for "
                f"{len(datasets)} datasets"
            )
        items = list(datasets)
        if not items:
            return BatchEmbeddingReport(results=())
        values = list(secret_values) if secret_values is not None else None
        pool = None
        if self.workers > 1 and len(items) > 1:
            pool = self._ensure_pool()  # None when spawning failed
        if pool is None:
            return BatchEmbeddingReport(
                results=tuple(self._local.generate_many(items, secret_values=values))
            )
        payloads = []
        start = 0
        for chunk in self._chunks(items):
            chunk_values = values[start : start + len(chunk)] if values else None
            payloads.append((chunk, chunk_values))
            start += len(chunk)
        collected: List[WatermarkResult] = []
        # imap yields chunk results in dispatch order, so concatenating
        # preserves the input order exactly.
        for chunk_results in pool.imap(_embed_chunk, payloads):
            collected.extend(chunk_results)
        return BatchEmbeddingReport(results=tuple(collected))

    def embed_files(
        self,
        paths: Sequence[Union[str, Path]],
        output_dir: Union[str, Path],
        secret_dir: Union[str, Path],
    ) -> List[Dict[str, object]]:
        """Watermark token-per-line files, each loaded inside its worker.

        Only the file *paths* are dispatched: each worker loads its
        chunk's token sequences, embeds them, and writes the watermarked
        file (same name under ``output_dir``) and the secret list
        (``<name>.json`` under ``secret_dir``) itself — so the dominant
        read/embed/write cost parallelises and the parent only collects
        flat per-file summaries.

        Every file receives its **own** secret ``R``. With a seeded pool
        the per-file randomness is derived from ``(seed, file name)`` —
        reproducible, but never shared between files, so one recipient's
        secret list reveals nothing about another file's watermark.

        Returns
        -------
        list of dict
            One :meth:`WatermarkResult.summary` per file (plus
            ``input`` / ``output`` / ``secret_file`` paths), in input
            order.
        """
        items = [Path(path) for path in paths]
        if not items:
            return []
        out_dir = Path(output_dir)
        sec_dir = Path(secret_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        sec_dir.mkdir(parents=True, exist_ok=True)
        pool = None
        if self.workers > 1 and len(items) > 1:
            pool = self._ensure_pool()
        if pool is None:
            return [
                _embed_one_file(self._local, path, out_dir, sec_dir) for path in items
            ]
        payloads = [(chunk, out_dir, sec_dir) for chunk in self._chunks(items)]
        collected: List[Dict[str, object]] = []
        for chunk_results in pool.imap(_embed_file_chunk, payloads):
            collected.extend(chunk_results)
        return collected


__all__ = [
    "EmbedData",
    "BatchEmbeddingReport",
    "ShardedEmbeddingPool",
]
