"""Streaming histogram ingestion: chunked, mergeable, bounded-memory.

The paper's ``Preprocess(D)`` assumes the whole dataset is available for
one counting pass. At production scale the dataset arrives in chunks — a
file too large for memory, a Kafka partition, the output of a map stage —
so this module provides :class:`StreamingHistogramBuilder`, an
accumulator that

* ingests token chunks or lazy iterators incrementally
  (:meth:`StreamingHistogramBuilder.add_tokens`,
  :meth:`StreamingHistogramBuilder.add_counts`),
* merges with other builders for map-reduce style ingestion
  (:meth:`StreamingHistogramBuilder.merge`,
  :meth:`StreamingHistogramBuilder.merge_all`): workers each count their
  shard of the stream and the partial histograms combine associatively,
* materialises a :class:`~repro.core.histogram.TokenHistogram` that is
  **bit-identical** to the one-shot ``TokenHistogram.from_tokens`` over
  the concatenated stream (:meth:`StreamingHistogramBuilder.build`).

Memory is bounded by the number of *distinct* tokens, never by the
stream length: the builder holds one integer per distinct token and the
sort to descending-frequency order happens once, at :meth:`build` time.
Because token counting is a commutative monoid, any chunking and any
merge tree over the same occurrences produces the same counts — the
parity property ``tests/test_streaming.py`` asserts under hypothesis.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Mapping

from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenValue, canonical_token
from repro.exceptions import HistogramError

#: Default number of tokens drained from a lazy iterator per internal
#: batch. Chosen so the C-speed ``Counter.update`` dominates the Python
#: chunking overhead while one batch of short tokens stays well under a
#: few megabytes of transient memory.
DEFAULT_CHUNK_SIZE = 65_536


def iter_batches(values: Iterable[TokenValue], size: int) -> Iterator[list]:
    """Drain ``values`` into lists of at most ``size`` items.

    Already-materialised sequences are passed through whole (when they
    fit one batch) or sliced at C speed; only lazy iterators pay the
    per-item batching loop. Shared by the builder's ingestion and the
    file loaders' chunked readers.

    Parameters
    ----------
    values : Iterable[TokenValue]
        Any iterable; never materialised beyond one batch.
    size : int
        Maximum items per yielded list (must be >= 1).

    Yields
    ------
    list
        Consecutive batches preserving input order.
    """
    if size < 1:
        raise HistogramError(f"batch size must be >= 1, got {size}")
    if isinstance(values, (list, tuple)):
        if len(values) <= size and isinstance(values, list):
            if values:
                yield values
            return
        for start in range(0, len(values), size):
            batch = values[start : start + size]
            yield batch if isinstance(batch, list) else list(batch)
        return
    batch: list = []
    append = batch.append
    for value in values:
        append(value)
        if len(batch) >= size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


class StreamingHistogramBuilder:
    """Incremental builder of a :class:`~repro.core.histogram.TokenHistogram`.

    Accumulates token counts from any number of chunks, iterators or
    pre-counted partial histograms, then materialises the exact histogram
    the one-shot constructor would have produced over the concatenated
    stream. Builders are mergeable, so ingestion parallelises: count
    shards independently, then :meth:`merge` the partials.

    Parameters
    ----------
    chunk_size : int, optional
        Internal batch size used when draining lazy iterators (default
        :data:`DEFAULT_CHUNK_SIZE`). Smaller values tighten the transient
        memory bound; larger values amortise per-batch overhead.

    Examples
    --------
    >>> builder = StreamingHistogramBuilder()
    >>> builder.add_tokens(["a", "b", "a"])
    >>> builder.add_tokens(iter(["b", "a"]))
    >>> builder.build().as_dict()
    {'a': 3, 'b': 2}
    """

    __slots__ = ("_counts", "_total", "_chunks", "chunk_size")

    def __init__(self, *, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise HistogramError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._counts: Counter = Counter()
        self._total = 0
        self._chunks = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def add(self, token: TokenValue, count: int = 1) -> None:
        """Record ``count`` appearances of a single token.

        Parameters
        ----------
        token : TokenValue
            The token value; canonicalised exactly like the one-shot
            constructors (:func:`repro.core.tokens.canonical_token`).
        count : int, optional
            Number of appearances to add (default 1, must be >= 0).
        """
        if count < 0:
            raise HistogramError(
                f"cannot ingest a negative count for {token!r}: {count}"
            )
        if count:
            self._counts[canonical_token(token)] += count
            self._total += count

    def add_tokens(self, tokens: Iterable[TokenValue]) -> None:
        """Ingest one chunk (or lazy iterator) of token occurrences.

        The iterable is consumed in internal batches of
        :attr:`chunk_size`, so a generator over a multi-gigabyte file is
        ingested without ever materialising it.

        Parameters
        ----------
        tokens : Iterable[TokenValue]
            Token occurrences, in any order. Non-string values are
            canonicalised exactly like ``TokenHistogram.from_tokens``.
        """
        update = self._counts.update
        for batch in iter_batches(tokens, self.chunk_size):
            # Token files and loaders yield plain strings, for which
            # canonicalisation is the identity — feeding the batch straight
            # into Counter.update keeps the whole count at C speed.
            if all(type(token) is str for token in batch):
                update(batch)
            else:
                update(map(canonical_token, batch))
            self._total += len(batch)
            self._chunks += 1

    def add_counts(self, counts: Mapping[TokenValue, int]) -> None:
        """Ingest a pre-counted token->count mapping (a partial histogram).

        Parameters
        ----------
        counts : Mapping[TokenValue, int]
            Partial counts to fold in; values must be non-negative
            integers. Keys are canonicalised.
        """
        for token, count in counts.items():
            if count < 0:
                raise HistogramError(
                    f"cannot ingest a negative count for {token!r}: {count}"
                )
        for token, count in counts.items():
            if count:
                self._counts[canonical_token(token)] += int(count)
                self._total += int(count)
        self._chunks += 1

    # ------------------------------------------------------------------ #
    # Map-reduce combination
    # ------------------------------------------------------------------ #

    def merge(self, other: "StreamingHistogramBuilder") -> "StreamingHistogramBuilder":
        """Fold another builder's partial counts into this one.

        Merging is associative and commutative (token counting is a
        monoid), so any merge tree over the same ingested occurrences
        yields the same final histogram. The other builder is left
        untouched.

        Parameters
        ----------
        other : StreamingHistogramBuilder
            A builder holding partial counts, e.g. from a worker that
            ingested one shard of the stream.

        Returns
        -------
        StreamingHistogramBuilder
            ``self``, for chaining.
        """
        self._counts.update(other._counts)
        self._total += other._total
        self._chunks += other._chunks
        return self

    @classmethod
    def merge_all(
        cls, builders: Iterable["StreamingHistogramBuilder"]
    ) -> "StreamingHistogramBuilder":
        """Combine many partial builders into one (the reduce step).

        Parameters
        ----------
        builders : Iterable[StreamingHistogramBuilder]
            Partial builders, e.g. one per ingestion worker.

        Returns
        -------
        StreamingHistogramBuilder
            A new builder holding the combined counts.
        """
        merged = cls()
        for builder in builders:
            merged.merge(builder)
        return merged

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return self._total > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogramBuilder({len(self._counts)} distinct tokens, "
            f"{self._total} occurrences, {self._chunks} chunks)"
        )

    @property
    def distinct_tokens(self) -> int:
        """Number of distinct tokens seen so far (the memory bound)."""
        return len(self._counts)

    @property
    def total_count(self) -> int:
        """Total occurrences ingested so far (the stream length)."""
        return self._total

    @property
    def chunks_ingested(self) -> int:
        """Number of chunks / pre-counted mappings folded in so far."""
        return self._chunks

    def partial_counts(self) -> Dict[str, int]:
        """Copy of the current partial token->count state."""
        return dict(self._counts)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def build(self) -> TokenHistogram:
        """Materialise the histogram of everything ingested so far.

        Returns
        -------
        TokenHistogram
            Bit-identical (same token order, same count array) to
            ``TokenHistogram.from_tokens`` over the concatenation of all
            ingested chunks. The builder remains usable: more chunks can
            be ingested and :meth:`build` called again.

        Raises
        ------
        HistogramError
            If nothing has been ingested yet (a histogram cannot be
            empty).
        """
        if not self._total:
            raise HistogramError("cannot build a histogram from an empty stream")
        return TokenHistogram(self._counts)


def histogram_from_chunks(
    chunks: Iterable[Iterable[TokenValue]],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> TokenHistogram:
    """One-call streaming ingestion: build a histogram from token chunks.

    Parameters
    ----------
    chunks : Iterable[Iterable[TokenValue]]
        An iterable of token chunks (each itself iterable), e.g. the
        output of :func:`repro.datasets.loaders.iter_token_chunks`.
    chunk_size : int, optional
        Internal batching granularity for lazy chunk iterators.

    Returns
    -------
    TokenHistogram
        Identical to the one-shot histogram over the concatenated chunks.
    """
    builder = StreamingHistogramBuilder(chunk_size=chunk_size)
    for chunk in chunks:
        builder.add_tokens(chunk)
    return builder.build()


def histogram_from_stream(
    tokens: Iterable[TokenValue],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> TokenHistogram:
    """Build a histogram from one lazy token iterator, in bounded memory.

    Parameters
    ----------
    tokens : Iterable[TokenValue]
        Token occurrences; consumed incrementally, never materialised.
    chunk_size : int, optional
        Internal batching granularity.

    Returns
    -------
    TokenHistogram
        Identical to ``TokenHistogram.from_tokens(list(tokens))``.
    """
    builder = StreamingHistogramBuilder(chunk_size=chunk_size)
    builder.add_tokens(tokens)
    return builder.build()


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "iter_batches",
    "StreamingHistogramBuilder",
    "histogram_from_chunks",
    "histogram_from_stream",
]
