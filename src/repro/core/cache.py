"""LRU cache of constructed detectors, keyed by secret/config fingerprint.

Constructing a :class:`~repro.core.detector.WatermarkDetector` derives two
SHA-256 hashes per stored pair (the moduli) plus the resolved thresholds —
work that depends only on the secret and the detection configuration. Any
caller that answers many verdicts against a recurring set of watermarks —
the resident service, the dispute judge and registry, provenance chains,
the attack-robustness sweeps — should therefore pay that construction once
per watermark, not once per request. :class:`DetectorCache` provides
exactly that: a bounded (or unbounded), thread-safe LRU map from
:func:`~repro.core.detector.detector_fingerprint` keys to live detectors.

This module originally lived in :mod:`repro.service`; it moved into
``repro.core`` when the attack, dispute and multi-watermark layers were
refactored onto shared cached detectors (``repro.service.cache`` still
re-exports it for compatibility).

The fingerprint is a keyed commitment (it reveals nothing about the pairs
to a party without ``R``) so cache keys are safe to log and to send over
the service wire as secret references.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.backend import BackendLike
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector, detector_fingerprint
from repro.core.secrets import WatermarkSecret
from repro.exceptions import ServiceError

#: Default number of distinct (secret, config) detectors kept resident.
DEFAULT_CACHE_CAPACITY = 8


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's hit/miss/eviction counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: Optional[int]

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without construction (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and ``--json`` output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class DetectorCache:
    """Bounded (or unbounded) LRU cache of :class:`WatermarkDetector` instances.

    Parameters
    ----------
    capacity : int, optional
        Maximum number of detectors kept resident; the least recently
        used entry is evicted when a new watermark would exceed it.
        ``None`` disables eviction entirely — the right setting for
        owner-side working sets whose size is already bounded elsewhere
        (a registry's buyer vault, a provenance chain's stages).

    Notes
    -----
    All operations take an internal lock, so one cache may be shared
    between the asyncio service loop and synchronous facade threads.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, WatermarkDetector]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> Dict[str, object]:
        """Pickle the configuration and counters, never the residents.

        The lock is process-local and the cached detectors are pure
        derived state, so objects that embed a cache (provenance chains,
        multi-watermark results) stay picklable/deepcopy-able; the cache
        simply starts cold on the other side.
        """
        with self._lock:
            return {
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.capacity = state["capacity"]  # type: ignore[assignment]
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._hits = int(state["hits"])  # type: ignore[arg-type]
        self._misses = int(state["misses"])  # type: ignore[arg-type]
        self._evictions = int(state["evictions"])  # type: ignore[arg-type]

    def lookup(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
        *,
        backend: BackendLike = None,
    ) -> Tuple[WatermarkDetector, bool]:
        """Return ``(detector, cache_hit)`` for a secret/config pair.

        On a miss the detector is constructed (paying the moduli
        precomputation) and inserted, evicting the least recently used
        entry when the cache is full. The compute backend is part of the
        fingerprint key, so detectors built for different backends are
        distinct residents — a cache shared between CPU and GPU callers
        never hands out a detector with operands on the wrong device.
        """
        key = detector_fingerprint(secret, config, backend)
        with self._lock:
            detector = self._entries.get(key)
            if detector is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return detector, True
            self._misses += 1
        # Construct outside the lock: moduli derivation is the expensive
        # part and must not serialise unrelated lookups.
        detector = WatermarkDetector(secret, config, backend=backend)
        with self._lock:
            resident = self._entries.get(key)
            if resident is not None:  # lost a construction race: keep first
                self._entries.move_to_end(key)
                return resident, False
            self._entries[key] = detector
            while self.capacity is not None and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return detector, False

    def get(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
        *,
        backend: BackendLike = None,
    ) -> WatermarkDetector:
        """:meth:`lookup` without the hit flag."""
        detector, _hit = self.lookup(secret, config, backend=backend)
        return detector

    def peek(self, key: str) -> Optional[WatermarkDetector]:
        """The resident detector for a fingerprint key, without side effects."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every resident detector (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


__all__ = ["DEFAULT_CACHE_CAPACITY", "CacheStats", "DetectorCache"]
