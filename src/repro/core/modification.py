"""Frequency-modification rule (the watermark embedding arithmetic).

Once a pair ``(tk_i, tk_j)`` (higher-frequency member first) with modulus
``s_ij`` has been selected, the watermark drives the frequency difference
to a multiple of ``s_ij``. With ``r = (f_i - f_j) mod s_ij``:

* if ``r == 0`` the pair is already aligned and nothing changes;
* if ``r <= s_ij / 2`` the difference is *reduced* by ``r``: the higher
  token loses ``ceil(r / 2)`` appearances and the lower token gains
  ``floor(r / 2)``;
* otherwise the difference is *increased* by ``s_ij - r`` to reach the
  next multiple: the higher token gains ``ceil((s_ij - r) / 2)`` and the
  lower token loses ``floor((s_ij - r) / 2)``.

Either way no token moves by more than ``ceil(s_ij / 2)``, which is what
the eligibility boundary rule guarantees room for — hence the ranking
constraint always survives the modification. The paper's running example
(YouTube 1098 / Instagram 537, ``s_ij = 129``) maps to the second case and
produces exactly the -23/+22 adjustment shown in Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.eligibility import EligiblePair
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenPair
from repro.exceptions import GenerationError


@dataclass(frozen=True)
class PairAdjustment:
    """The frequency deltas that watermark one pair.

    ``delta_first`` applies to the pair's higher-frequency token and
    ``delta_second`` to the lower-frequency one. ``cost`` is the total
    number of appearance insertions plus removals (``|delta_first| +
    |delta_second|``).
    """

    pair: TokenPair
    modulus: int
    delta_first: int
    delta_second: int

    @property
    def cost(self) -> int:
        """Total appearance changes implied by this adjustment."""
        return abs(self.delta_first) + abs(self.delta_second)

    def as_deltas(self) -> Dict[str, int]:
        """Token->delta mapping suitable for ``TokenHistogram.with_updates``."""
        return {self.pair.first: self.delta_first, self.pair.second: self.delta_second}


def plan_adjustment(
    frequency_first: int,
    frequency_second: int,
    modulus: int,
    pair: TokenPair,
) -> PairAdjustment:
    """Compute the adjustment aligning one pair to its modulus.

    ``frequency_first`` must be greater than or equal to
    ``frequency_second`` (the pair convention); the returned deltas make
    ``(f'_first - f'_second) mod modulus == 0``.
    """
    if modulus < 2:
        raise GenerationError(f"pair modulus must be >= 2, got {modulus}")
    if frequency_first < frequency_second:
        raise GenerationError(
            "pair convention violated: first token must have the larger frequency "
            f"({frequency_first} < {frequency_second})"
        )
    difference = frequency_first - frequency_second
    remainder = difference % modulus
    if remainder == 0:
        return PairAdjustment(pair=pair, modulus=modulus, delta_first=0, delta_second=0)
    if remainder <= modulus // 2:
        # Shrink the difference by `remainder`.
        delta_first = -math.ceil(remainder / 2)
        delta_second = remainder + delta_first
    else:
        # Grow the difference up to the next multiple of the modulus.
        growth = modulus - remainder
        delta_first = math.ceil(growth / 2)
        delta_second = delta_first - growth
    return PairAdjustment(
        pair=pair, modulus=modulus, delta_first=delta_first, delta_second=delta_second
    )


def plan_adjustments(
    histogram: TokenHistogram,
    selected: Sequence[EligiblePair],
    *,
    backend: BackendLike = None,
) -> List[PairAdjustment]:
    """Plan the adjustments for every selected pair against ``histogram``.

    The ceil/floor arithmetic of :func:`plan_adjustment` is evaluated for
    all pairs at once through the compute backend's
    :meth:`~repro.core.backend.ArrayBackend.plan_deltas` kernel; the
    result is identical to calling :func:`plan_adjustment` per pair.
    """
    if not selected:
        return []
    arrays = histogram.arrays()
    first = arrays.frequencies(item.pair.first for item in selected)
    second = arrays.frequencies(item.pair.second for item in selected)
    moduli = np.fromiter(
        (item.modulus for item in selected), dtype=np.int64, count=len(selected)
    )
    if np.any(moduli < 2):
        bad = selected[int(np.nonzero(moduli < 2)[0][0])]
        raise GenerationError(f"pair modulus must be >= 2, got {bad.modulus}")
    if np.any(first < second):
        index = int(np.nonzero(first < second)[0][0])
        raise GenerationError(
            "pair convention violated: first token must have the larger frequency "
            f"({int(first[index])} < {int(second[index])})"
        )
    delta_first, delta_second = resolve_backend(backend).plan_deltas(
        first, second, moduli
    )
    return [
        PairAdjustment(
            pair=item.pair,
            modulus=item.modulus,
            delta_first=int(delta_first[index]),
            delta_second=int(delta_second[index]),
        )
        for index, item in enumerate(selected)
    ]


def combined_deltas(adjustments: Iterable[PairAdjustment]) -> Dict[str, int]:
    """Merge per-pair adjustments into a single token->delta mapping.

    Selected pairs never share a token (they come from a matching), but the
    merge is written defensively to sum deltas if they ever did.
    """
    deltas: Dict[str, int] = {}
    for adjustment in adjustments:
        for token, delta in adjustment.as_deltas().items():
            deltas[token] = deltas.get(token, 0) + delta
    return deltas


def apply_adjustments(
    histogram: TokenHistogram,
    adjustments: Sequence[PairAdjustment],
) -> TokenHistogram:
    """Return a new histogram with all adjustments applied."""
    return histogram.with_updates(combined_deltas(adjustments))


def verify_alignment(
    histogram: TokenHistogram,
    adjustments: Sequence[PairAdjustment],
) -> bool:
    """Check that every adjusted pair satisfies the modulo-zero rule.

    Used as a post-condition by the generator and extensively by the test
    suite: after applying ``adjustments`` to ``histogram`` the difference
    of every pair must be congruent to zero modulo the pair's modulus.
    """
    if not adjustments:
        return True
    watermarked = apply_adjustments(histogram, adjustments)
    arrays = watermarked.arrays()
    first = arrays.frequencies(adjustment.pair.first for adjustment in adjustments)
    second = arrays.frequencies(adjustment.pair.second for adjustment in adjustments)
    moduli = np.fromiter(
        (adjustment.modulus for adjustment in adjustments),
        dtype=np.int64,
        count=len(adjustments),
    )
    return bool(np.all((first - second) % moduli == 0))


def total_cost(adjustments: Sequence[PairAdjustment]) -> int:
    """Total number of appearance changes across all adjustments."""
    return sum(adjustment.cost for adjustment in adjustments)


__all__ = [
    "PairAdjustment",
    "plan_adjustment",
    "plan_adjustments",
    "combined_deltas",
    "apply_adjustments",
    "verify_alignment",
    "total_cost",
]
