"""Equally-valued 0/1 knapsack under the similarity budget (QKP).

After Maximum Weight Matching proposes a vertex-disjoint set of cheap
pairs, the budget constraint still has to be enforced: the similarity
between the original and watermarked histograms must stay at or above
``(100 - b)%``. Because every pair is worth exactly one unit of watermark
strength, this is the *equally valued* 0/1 knapsack the paper describes —
NP-hard in general but solvable greedily when all values are equal: take
items in increasing order of weight (embedding cost) until the budget is
exhausted, which maximises the number of items packed.

The "weight" of a pair is not additive in a simple scalar, however — it is
the similarity drop its frequency adjustment causes, which depends on the
already-applied adjustments. The selector therefore applies adjustments
incrementally, measuring the similarity of the running histogram after
each candidate, exactly as an owner running the algorithm would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.eligibility import EligiblePair
from repro.core.histogram import TokenHistogram
from repro.core.modification import PairAdjustment, plan_adjustment
from repro.core.similarity import SimilarityTracker
from repro.exceptions import MatchingError


@dataclass(frozen=True)
class BudgetedSelection:
    """Result of the budget-constrained pair selection.

    Attributes
    ----------
    selected:
        Pairs kept within the budget, in the order they were accepted.
    adjustments:
        The frequency adjustment planned for each selected pair.
    rejected:
        Candidate pairs that were skipped because accepting them would
        have pushed the similarity below ``(100 - budget)%``.
    similarity_percent:
        Similarity between the original histogram and the histogram with
        all selected adjustments applied.
    """

    selected: Tuple[EligiblePair, ...]
    adjustments: Tuple[PairAdjustment, ...]
    rejected: Tuple[EligiblePair, ...]
    similarity_percent: float


def select_within_budget(
    histogram: TokenHistogram,
    candidates: Sequence[EligiblePair],
    budget: float,
    *,
    metric: str = "cosine",
    order_by_cost: bool = True,
    max_pairs: Optional[int] = None,
) -> BudgetedSelection:
    """Select the largest subset of ``candidates`` respecting the budget.

    Parameters
    ----------
    histogram:
        The original histogram similarity is measured against.
    candidates:
        Vertex-disjoint eligible pairs (typically the MWM output, or the
        sorted/ shuffled eligible list for the heuristics).
    budget:
        The distortion budget ``b`` in percent; the selection keeps
        ``similarity >= 100 - budget``.
    metric:
        Similarity metric name (see :mod:`repro.core.similarity`).
    order_by_cost:
        When True (the optimal and greedy paths) candidates are visited in
        increasing embedding cost; when False (the random heuristic) they
        are visited in the given order.
    max_pairs:
        Optional hard cap on the number of selected pairs; candidates past
        the cap are reported as rejected. The paper's objective is "as many
        pairs as the budget allows", but owners tracking many dataset
        versions may prefer a fixed, small watermark per version.

    Notes
    -----
    Candidates whose adjustment would overdraw the budget are skipped but
    later, cheaper-in-context candidates are still considered; with
    cost-ordered input this matches the greedy optimum for equally valued
    items while being robust to the non-additivity of the similarity drop.

    The similarity constraint is evaluated through a
    :class:`repro.core.similarity.SimilarityTracker`, so each candidate
    costs an O(1) aggregate delta (preview, then commit on acceptance)
    instead of the seed implementation's full O(n) metric recompute per
    candidate; see :mod:`repro.core.reference` for the original loop.
    """
    if budget < 0 or budget > 100:
        raise MatchingError(f"budget b must be within [0, 100], got {budget}")
    minimum_similarity = 100.0 - budget
    ordered = (
        sorted(candidates, key=lambda item: (item.cost, item.pair))
        if order_by_cost
        else list(candidates)
    )

    selected: List[EligiblePair] = []
    adjustments: List[PairAdjustment] = []
    rejected: List[EligiblePair] = []
    tracker = SimilarityTracker(histogram, metric=metric)
    current_similarity = 100.0

    for item in ordered:
        if max_pairs is not None and len(selected) >= max_pairs:
            rejected.append(item)
            continue
        adjustment = plan_adjustment(
            tracker.current_count(item.pair.first),
            tracker.current_count(item.pair.second),
            item.modulus,
            item.pair,
        )
        if adjustment.cost == 0:
            # Already aligned: watermarking this pair is free.
            selected.append(item)
            adjustments.append(adjustment)
            continue
        tentative_similarity = tracker.peek_percent(adjustment.as_deltas())
        if tentative_similarity + 1e-12 >= minimum_similarity:
            selected.append(item)
            adjustments.append(adjustment)
            tracker.apply(adjustment.as_deltas())
            current_similarity = tentative_similarity
        else:
            rejected.append(item)

    return BudgetedSelection(
        selected=tuple(selected),
        adjustments=tuple(adjustments),
        rejected=tuple(rejected),
        similarity_percent=current_similarity,
    )


def knapsack_capacity_report(selection: BudgetedSelection, budget: float) -> dict:
    """Small summary dictionary used by benchmarks and the CLI."""
    return {
        "selected_pairs": len(selection.selected),
        "rejected_pairs": len(selection.rejected),
        "similarity_percent": selection.similarity_percent,
        "budget_percent": budget,
        "budget_used_percent": 100.0 - selection.similarity_percent,
        "total_cost": sum(adjustment.cost for adjustment in selection.adjustments),
    }


__all__ = ["BudgetedSelection", "select_within_budget", "knapsack_capacity_report"]
