"""Token frequency histograms and ranking boundaries.

The first step of both watermark generation and detection is
``Preprocess(D)``: build the histogram of token appearance frequencies,
sorted in descending order. Generation additionally computes, for every
token, an *upper boundary* ``u_i`` (how much its frequency may grow) and a
*lower boundary* ``l_i`` (how much it may shrink) such that any change
within the boundaries cannot invert the ranking of two tokens:

* the most frequent token has ``u_0 = inf`` (it can only grow further away
  from the second token),
* the least frequent token has ``l_last = f_last`` (it can lose all of its
  appearances),
* otherwise ``u_i = f_{i-1} - f_i`` and ``l_i = f_i - f_{i+1}``.

Boundaries are computed once on the *original* histogram and, per the
paper, are not updated afterwards: the eligibility rule only ever allows a
token to take part in a single watermarked pair (matchings share no
vertices), so the original slack is never spent twice.

Since the array-engine refactor the histogram is backed by NumPy arrays
(descending count vector + token↔index vocabulary, see
:mod:`repro.core.arrays`); the mapping-style methods below are thin views
over that backing so existing callers keep working unchanged.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.arrays import (
    UNBOUNDED,
    HistogramArrays,
    counts_from_mapping,
    sort_histogram,
)
from repro.core.backend import get_backend
from repro.core.tokens import TokenValue, canonical_token
from repro.exceptions import HistogramError


@dataclass(frozen=True)
class TokenBoundaries:
    """Per-token ranking-preservation slack.

    ``upper`` is how many appearances may be *added* and ``lower`` how many
    may be *removed* without the token overtaking its higher-ranked
    neighbour or falling behind its lower-ranked neighbour. The top-ranked
    token has no upper boundary at all; that state is carried as
    ``math.inf`` for backwards compatibility but all decisions go through
    :attr:`unbounded_upper` rather than comparing against the float.
    """

    upper: float
    lower: int

    @property
    def unbounded_upper(self) -> bool:
        """Whether this token may grow without limit (the top-ranked token)."""
        return math.isinf(self.upper)

    def allows_change(self, magnitude: int) -> bool:
        """Whether a change of ``magnitude`` in either direction fits the slack.

        The unbounded upper boundary of the top-ranked token is handled
        explicitly: only the lower boundary constrains it. For every other
        token the (integral) upper boundary must also cover ``magnitude``.
        """
        if self.lower < magnitude:
            return False
        return self.unbounded_upper or int(self.upper) >= magnitude


class TokenHistogram:
    """Frequency histogram of a token dataset, sorted by descending count.

    The histogram is the single data structure the FreqyWM algorithms
    operate on: eligibility, matching, modification and detection all read
    (and in one place write) token counts through this class.

    Instances can be built from a raw iterable of token occurrences
    (:meth:`from_tokens`) or directly from a token->count mapping
    (:meth:`from_counts`). Counts live in a descending-sorted NumPy array
    (:meth:`arrays`); the dict-style accessors are views over it.
    """

    __slots__ = ("_order", "_array", "_rank", "_arrays", "_dict", "_total")

    def __init__(self, counts: Mapping[str, int]) -> None:
        cleaned: Dict[str, int] = {}
        for token, count in counts.items():
            if not isinstance(count, (int,)) or isinstance(count, bool):
                if isinstance(count, float) and count.is_integer():
                    count = int(count)
                else:
                    raise HistogramError(
                        f"frequency of token {token!r} must be an integer, got {count!r}"
                    )
            if count < 0:
                raise HistogramError(
                    f"frequency of token {token!r} must be non-negative, got {count}"
                )
            if count > 0:
                cleaned[canonical_token(token)] = cleaned.get(canonical_token(token), 0) + count
        if not cleaned:
            raise HistogramError("cannot build a histogram with no token occurrences")
        self._init_sorted(*sort_histogram(*counts_from_mapping(cleaned)))

    def _init_sorted(self, order: List[str], array: np.ndarray) -> None:
        """Shared constructor tail: install a pre-sorted token/count pair."""
        self._order: List[str] = order
        array = np.ascontiguousarray(array, dtype=np.int64)
        array.flags.writeable = False
        self._array: np.ndarray = array
        self._rank: Dict[str, int] = {
            token: index for index, token in enumerate(order)
        }
        self._arrays: Optional[HistogramArrays] = None
        self._dict: Optional[Dict[str, int]] = None
        self._total: Optional[int] = None

    @classmethod
    def _from_sorted(cls, order: List[str], array: np.ndarray) -> "TokenHistogram":
        """Fast path for already-validated, already-sorted data."""
        instance = cls.__new__(cls)
        instance._init_sorted(order, array)
        return instance

    def __getstate__(self) -> Tuple[List[str], np.ndarray]:
        # Pickle only the sorted (tokens, counts) pair: the rank lookup and
        # the array/dict caches are derived state, and dropping them keeps
        # the payload shipped to sharded detection workers minimal.
        return (self._order, self._array)

    def __setstate__(self, state: Tuple[List[str], np.ndarray]) -> None:
        order, array = state
        self._init_sorted(list(order), np.asarray(array, dtype=np.int64))

    def __reduce_ex__(self, protocol: int):
        # Protocol 5 hands the counts array to the picklee as an
        # out-of-band PickleBuffer: a transport that extracts buffers
        # (the blob data plane, shared-memory segments) moves the int64
        # block without copying it through the pickle stream, and the
        # receiving side reconstructs with ``np.frombuffer`` mapping the
        # delivered buffer directly. Older protocols keep the plain
        # ``__getstate__`` path.
        if protocol >= 5:
            return (
                TokenHistogram._from_pickle_buffer,
                (self._order, pickle.PickleBuffer(self._array), len(self._array)),
            )
        return super().__reduce_ex__(protocol)

    @classmethod
    def _from_pickle_buffer(
        cls, order: List[str], buffer, length: int
    ) -> "TokenHistogram":
        """Rebuild from a protocol-5 out-of-band counts buffer (zero-copy)."""
        array = np.frombuffer(buffer, dtype=np.int64, count=length)
        instance = cls.__new__(cls)
        instance._init_sorted(list(order), array)
        return instance

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tokens(cls, tokens: Iterable[TokenValue]) -> "TokenHistogram":
        """Count token occurrences from a raw sequence of values.

        Parameters
        ----------
        tokens : Iterable[TokenValue]
            Token occurrences in any order; values are canonicalised via
            :func:`repro.core.tokens.canonical_token`. For chunked or
            lazy data sources, prefer
            :class:`repro.core.streaming.StreamingHistogramBuilder`,
            whose result is bit-identical.

        Returns
        -------
        TokenHistogram
            The descending-frequency histogram.

        Raises
        ------
        HistogramError
            If the sequence is empty.
        """
        counts: Dict[str, int] = {}
        for value in tokens:
            token = canonical_token(value)
            counts[token] = counts.get(token, 0) + 1
        if not counts:
            raise HistogramError("cannot build a histogram from an empty dataset")
        return cls(counts)

    @classmethod
    def from_counts(cls, counts: Mapping[TokenValue, int]) -> "TokenHistogram":
        """Build a histogram from an existing token->count mapping.

        Parameters
        ----------
        counts : Mapping[TokenValue, int]
            Token -> non-negative appearance count; keys are
            canonicalised and zero counts dropped.

        Returns
        -------
        TokenHistogram
            The descending-frequency histogram.
        """
        return cls({canonical_token(token): count for token, count in counts.items()})

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __contains__(self, token: object) -> bool:
        return token in self._rank

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TokenHistogram):
            return NotImplemented
        return self._order == other._order and bool(
            np.array_equal(self._array, other._array)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenHistogram({len(self)} tokens, {self.total_count()} occurrences)"

    @property
    def tokens(self) -> Tuple[str, ...]:
        """Tokens in descending frequency order."""
        return tuple(self._order)

    def arrays(self) -> HistogramArrays:
        """The array backing of this histogram (built once, then cached)."""
        if self._arrays is None:
            self._arrays = HistogramArrays(self._order, self._array, self._rank)
        return self._arrays

    def counts_array(self) -> np.ndarray:
        """Read-only ``int64`` counts in descending order."""
        return self._array

    def frequency(self, token: TokenValue) -> int:
        """Appearance count of ``token`` (0 if absent)."""
        index = self._rank.get(canonical_token(token))
        if index is None:
            return 0
        return int(self._array[index])

    def rank(self, token: TokenValue) -> Optional[int]:
        """Zero-based rank of ``token`` in descending frequency order."""
        return self._rank.get(canonical_token(token))

    def total_count(self) -> int:
        """Total number of token occurrences (the dataset size)."""
        if self._total is None:
            self._total = int(self._array.sum())
        return self._total

    def as_dict(self) -> Dict[str, int]:
        """Copy of the token->count mapping."""
        if self._dict is None:
            self._dict = dict(zip(self._order, self._array.tolist()))
        return dict(self._dict)

    def frequencies(self) -> Tuple[int, ...]:
        """Counts in descending order, aligned with :attr:`tokens`."""
        return tuple(self._array.tolist())

    def top(self, n: int) -> List[Tuple[str, int]]:
        """The ``n`` most frequent tokens with their counts."""
        return list(zip(self._order[:n], self._array[:n].tolist()))

    # ------------------------------------------------------------------ #
    # Boundaries
    # ------------------------------------------------------------------ #

    def boundaries(self) -> Dict[str, TokenBoundaries]:
        """Ranking-preservation boundaries for every token.

        See the module docstring for the definition. The mapping is a view
        materialised from the vectorized boundary arrays (see
        :meth:`repro.core.arrays.HistogramArrays.boundary_arrays`).
        """
        upper, lower = self.arrays().boundary_arrays()
        upper_values = upper.tolist()
        lower_values = lower.tolist()
        return {
            token: TokenBoundaries(
                upper=math.inf if upper_values[index] == UNBOUNDED else float(upper_values[index]),
                lower=lower_values[index],
            )
            for index, token in enumerate(self._order)
        }

    # ------------------------------------------------------------------ #
    # Mutation (used by the frequency-modification stage)
    # ------------------------------------------------------------------ #

    def with_updates(self, deltas: Mapping[str, int]) -> "TokenHistogram":
        """Return a new histogram with ``deltas`` applied to token counts.

        Counts may not become negative; tokens whose count reaches zero are
        dropped from the histogram (they no longer appear in the dataset).
        The delta application over existing tokens runs as one scatter on
        the active compute backend
        (:meth:`repro.core.backend.ArrayBackend.apply_deltas`).
        """
        added: Dict[str, int] = {}
        changed: Dict[int, int] = {}
        for token, delta in deltas.items():
            canonical = canonical_token(token)
            index = self._rank.get(canonical)
            if index is None:
                added[canonical] = added.get(canonical, 0) + delta
            else:
                # Accumulate per rank position: aliases of one canonical
                # token must collapse to a single (unique-position) entry
                # before the scatter kernel.
                changed[index] = changed.get(index, 0) + delta
        if changed:
            positions = np.fromiter(changed.keys(), dtype=np.intp, count=len(changed))
            values = np.fromiter(changed.values(), dtype=np.int64, count=len(changed))
            array = get_backend().apply_deltas(self._array, positions, values)
        else:
            array = self._array.copy()
        for token, delta in added.items():
            if delta < 0:
                raise HistogramError(
                    f"update would make frequency of {token!r} negative"
                    f" (0 {delta:+d})"
                )
        negative = np.nonzero(array < 0)[0]
        if negative.size:
            index = int(negative[0])
            token = self._order[index]
            raise HistogramError(
                f"update would make frequency of {token!r} negative"
                f" ({int(self._array[index])} {int(array[index]) - int(self._array[index]):+d})"
            )
        keep = array > 0
        tokens = (
            self._order
            if bool(keep.all())
            else [token for token, kept in zip(self._order, keep) if kept]
        )
        values = array if bool(keep.all()) else array[keep]
        for token, delta in added.items():
            if delta > 0:
                tokens = list(tokens) + [token]
                values = np.concatenate([values, np.array([delta], dtype=np.int64)])
        if not len(tokens):
            raise HistogramError("cannot build a histogram with no token occurrences")
        return TokenHistogram._from_sorted(*sort_histogram(list(tokens), values))

    def scaled(self, factor: float) -> "TokenHistogram":
        """Return a histogram with every count multiplied by ``factor``.

        Used by the sampling-attack defence, where the owner rescales a
        suspected subsample back to the original dataset size before
        running detection. Counts are rounded to the nearest integer and
        tokens that round to zero are kept at one occurrence so they stay
        part of the histogram support.
        """
        if factor <= 0:
            raise HistogramError(f"scale factor must be positive, got {factor}")
        values = np.maximum(
            1, np.rint(self._array * float(factor)).astype(np.int64)
        )
        return TokenHistogram._from_sorted(*sort_histogram(list(self._order), values))


def pairwise_rank_gaps(histogram: TokenHistogram) -> List[int]:
    """Gaps between consecutive frequencies in descending order.

    A convenience used by the dataset generators and tests: uniform data
    has (near-)zero gaps everywhere, which is exactly the regime in which
    the paper says FreqyWM cannot embed a watermark.
    """
    counts = histogram.counts_array()
    return np.subtract(counts[:-1], counts[1:]).tolist()


__all__ = ["TokenBoundaries", "TokenHistogram", "pairwise_rank_gaps"]
