"""Token frequency histograms and ranking boundaries.

The first step of both watermark generation and detection is
``Preprocess(D)``: build the histogram of token appearance frequencies,
sorted in descending order. Generation additionally computes, for every
token, an *upper boundary* ``u_i`` (how much its frequency may grow) and a
*lower boundary* ``l_i`` (how much it may shrink) such that any change
within the boundaries cannot invert the ranking of two tokens:

* the most frequent token has ``u_0 = inf`` (it can only grow further away
  from the second token),
* the least frequent token has ``l_last = f_last`` (it can lose all of its
  appearances),
* otherwise ``u_i = f_{i-1} - f_i`` and ``l_i = f_i - f_{i+1}``.

Boundaries are computed once on the *original* histogram and, per the
paper, are not updated afterwards: the eligibility rule only ever allows a
token to take part in a single watermarked pair (matchings share no
vertices), so the original slack is never spent twice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.tokens import TokenValue, canonical_token
from repro.exceptions import HistogramError


@dataclass(frozen=True)
class TokenBoundaries:
    """Per-token ranking-preservation slack.

    ``upper`` is how many appearances may be *added* and ``lower`` how many
    may be *removed* without the token overtaking its higher-ranked
    neighbour or falling behind its lower-ranked neighbour.
    """

    upper: float
    lower: int

    def allows_change(self, magnitude: int) -> bool:
        """Whether a change of ``magnitude`` in either direction fits the slack."""
        return self.upper >= magnitude and self.lower >= magnitude


class TokenHistogram:
    """Frequency histogram of a token dataset, sorted by descending count.

    The histogram is the single data structure the FreqyWM algorithms
    operate on: eligibility, matching, modification and detection all read
    (and in one place write) token counts through this class.

    Instances can be built from a raw iterable of token occurrences
    (:meth:`from_tokens`) or directly from a token->count mapping
    (:meth:`from_counts`).
    """

    def __init__(self, counts: Mapping[str, int]) -> None:
        cleaned: Dict[str, int] = {}
        for token, count in counts.items():
            if not isinstance(count, (int,)) or isinstance(count, bool):
                if isinstance(count, float) and count.is_integer():
                    count = int(count)
                else:
                    raise HistogramError(
                        f"frequency of token {token!r} must be an integer, got {count!r}"
                    )
            if count < 0:
                raise HistogramError(
                    f"frequency of token {token!r} must be non-negative, got {count}"
                )
            if count > 0:
                cleaned[canonical_token(token)] = cleaned.get(canonical_token(token), 0) + count
        if not cleaned:
            raise HistogramError("cannot build a histogram with no token occurrences")
        self._counts: Dict[str, int] = cleaned
        self._order: List[str] = sorted(
            self._counts, key=lambda token: (-self._counts[token], token)
        )
        self._rank: Dict[str, int] = {
            token: index for index, token in enumerate(self._order)
        }

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tokens(cls, tokens: Iterable[TokenValue]) -> "TokenHistogram":
        """Count token occurrences from a raw sequence of values."""
        counts: Dict[str, int] = {}
        for value in tokens:
            token = canonical_token(value)
            counts[token] = counts.get(token, 0) + 1
        if not counts:
            raise HistogramError("cannot build a histogram from an empty dataset")
        return cls(counts)

    @classmethod
    def from_counts(cls, counts: Mapping[TokenValue, int]) -> "TokenHistogram":
        """Build a histogram from an existing token->count mapping."""
        return cls({canonical_token(token): count for token, count in counts.items()})

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __contains__(self, token: object) -> bool:
        return token in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TokenHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenHistogram({len(self)} tokens, {self.total_count()} occurrences)"

    @property
    def tokens(self) -> Tuple[str, ...]:
        """Tokens in descending frequency order."""
        return tuple(self._order)

    def frequency(self, token: TokenValue) -> int:
        """Appearance count of ``token`` (0 if absent)."""
        return self._counts.get(canonical_token(token), 0)

    def rank(self, token: TokenValue) -> Optional[int]:
        """Zero-based rank of ``token`` in descending frequency order."""
        return self._rank.get(canonical_token(token))

    def total_count(self) -> int:
        """Total number of token occurrences (the dataset size)."""
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Copy of the token->count mapping."""
        return dict(self._counts)

    def frequencies(self) -> Tuple[int, ...]:
        """Counts in descending order, aligned with :attr:`tokens`."""
        return tuple(self._counts[token] for token in self._order)

    def top(self, n: int) -> List[Tuple[str, int]]:
        """The ``n`` most frequent tokens with their counts."""
        return [(token, self._counts[token]) for token in self._order[:n]]

    # ------------------------------------------------------------------ #
    # Boundaries
    # ------------------------------------------------------------------ #

    def boundaries(self) -> Dict[str, TokenBoundaries]:
        """Ranking-preservation boundaries for every token.

        See the module docstring for the definition. The returned mapping
        is freshly computed from the current counts.
        """
        bounds: Dict[str, TokenBoundaries] = {}
        order = self._order
        for index, token in enumerate(order):
            frequency = self._counts[token]
            if index == 0:
                upper: float = math.inf
            else:
                upper = float(self._counts[order[index - 1]] - frequency)
            if index == len(order) - 1:
                lower = frequency
            else:
                lower = frequency - self._counts[order[index + 1]]
            bounds[token] = TokenBoundaries(upper=upper, lower=lower)
        return bounds

    # ------------------------------------------------------------------ #
    # Mutation (used by the frequency-modification stage)
    # ------------------------------------------------------------------ #

    def with_updates(self, deltas: Mapping[str, int]) -> "TokenHistogram":
        """Return a new histogram with ``deltas`` applied to token counts.

        Counts may not become negative; tokens whose count reaches zero are
        dropped from the histogram (they no longer appear in the dataset).
        """
        counts = dict(self._counts)
        for token, delta in deltas.items():
            canonical = canonical_token(token)
            new_count = counts.get(canonical, 0) + delta
            if new_count < 0:
                raise HistogramError(
                    f"update would make frequency of {canonical!r} negative"
                    f" ({counts.get(canonical, 0)} {delta:+d})"
                )
            if new_count == 0:
                counts.pop(canonical, None)
            else:
                counts[canonical] = new_count
        return TokenHistogram(counts)

    def scaled(self, factor: float) -> "TokenHistogram":
        """Return a histogram with every count multiplied by ``factor``.

        Used by the sampling-attack defence, where the owner rescales a
        suspected subsample back to the original dataset size before
        running detection. Counts are rounded to the nearest integer and
        tokens that round to zero are kept at one occurrence so they stay
        part of the histogram support.
        """
        if factor <= 0:
            raise HistogramError(f"scale factor must be positive, got {factor}")
        counts = {
            token: max(1, int(round(count * factor)))
            for token, count in self._counts.items()
        }
        return TokenHistogram(counts)


def pairwise_rank_gaps(histogram: TokenHistogram) -> List[int]:
    """Gaps between consecutive frequencies in descending order.

    A convenience used by the dataset generators and tests: uniform data
    has (near-)zero gaps everywhere, which is exactly the regime in which
    the paper says FreqyWM cannot embed a watermark.
    """
    frequencies: Sequence[int] = histogram.frequencies()
    return [frequencies[i] - frequencies[i + 1] for i in range(len(frequencies) - 1)]


__all__ = ["TokenBoundaries", "TokenHistogram", "pairwise_rank_gaps"]
