"""Data transformation: turn histogram deltas into an edited dataset.

The frequency-modification stage only decides *how many* appearances of
each token to add or remove; this module performs the actual edit on the
token sequence (the ``Create`` step of Algorithm I):

* removals pick random existing positions of the token, so no positional
  pattern reveals which appearances belonged to the watermark;
* insertions go to random positions of the sequence — the paper stresses
  that inserting at predictable positions (for example always at the end)
  would weaken FreqyWM against a guess attack.

For multi-dimensional datasets (where a token is a combination of
attribute values but rows carry further attributes) the equivalent row
transformation lives in :mod:`repro.core.multidimensional`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenValue, canonical_token
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, ensure_rng


def apply_deltas_to_tokens(
    tokens: Sequence[TokenValue],
    deltas: Mapping[str, int],
    *,
    rng: RngLike = None,
) -> List[str]:
    """Apply token-count ``deltas`` to a raw token sequence.

    Parameters
    ----------
    tokens:
        The original dataset as a sequence of token occurrences.
    deltas:
        Mapping from canonical token to the signed number of appearances
        to add (positive) or remove (negative).
    rng:
        Randomness source for choosing removal victims and insertion
        positions.

    Returns
    -------
    A new list of canonical token strings whose histogram equals the
    original histogram with ``deltas`` applied.
    """
    generator = ensure_rng(rng)
    canonical = [canonical_token(token) for token in tokens]

    # Plan removals: choose random occurrence indices per token.
    removal_indices: set = set()
    positions_by_token: Dict[str, List[int]] = {}
    removals = {token: -delta for token, delta in deltas.items() if delta < 0}
    if removals:
        for index, token in enumerate(canonical):
            if token in removals:
                positions_by_token.setdefault(token, []).append(index)
        for token, count in removals.items():
            positions = positions_by_token.get(token, [])
            if len(positions) < count:
                raise GenerationError(
                    f"cannot remove {count} appearances of {token!r}: only "
                    f"{len(positions)} present"
                )
            chosen = generator.choice(len(positions), size=count, replace=False)
            removal_indices.update(positions[i] for i in chosen)

    result = [token for index, token in enumerate(canonical) if index not in removal_indices]

    # Plan insertions: new appearances land at random positions.
    additions = {token: delta for token, delta in deltas.items() if delta > 0}
    for token, count in additions.items():
        for _ in range(count):
            position = int(generator.integers(0, len(result) + 1))
            result.insert(position, token)
    return result


def transform_dataset(
    tokens: Sequence[TokenValue],
    original: TokenHistogram,
    watermarked: TokenHistogram,
    *,
    rng: RngLike = None,
) -> List[str]:
    """Edit ``tokens`` so its histogram matches ``watermarked``.

    The deltas are derived by diffing the two histograms, so this function
    also serves the multi-watermarking and attack modules, which produce a
    target histogram first and then need a consistent dataset.
    """
    deltas: Dict[str, int] = {}
    all_tokens = set(original.as_dict()) | set(watermarked.as_dict())
    for token in all_tokens:
        delta = watermarked.frequency(token) - original.frequency(token)
        if delta != 0:
            deltas[token] = delta
    return apply_deltas_to_tokens(tokens, deltas, rng=rng)


def verify_transformation(
    transformed: Sequence[str],
    expected: TokenHistogram,
) -> bool:
    """Check that a transformed token sequence matches the target histogram."""
    return TokenHistogram.from_tokens(transformed).as_dict() == expected.as_dict()


__all__ = ["apply_deltas_to_tokens", "transform_dataset", "verify_transformation"]
