"""Data transformation: turn histogram deltas into an edited dataset.

The frequency-modification stage only decides *how many* appearances of
each token to add or remove; this module performs the actual edit on the
token sequence (the ``Create`` step of Algorithm I):

* removals pick random existing positions of the token, so no positional
  pattern reveals which appearances belonged to the watermark;
* insertions go to random positions of the sequence — the paper stresses
  that inserting at predictable positions (for example always at the end)
  would weaken FreqyWM against a guess attack.

For multi-dimensional datasets (where a token is a combination of
attribute values but rows carry further attributes) the equivalent row
transformation lives in :mod:`repro.core.multidimensional`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenValue, canonical_token
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, ensure_rng


def apply_deltas_to_tokens(
    tokens: Sequence[TokenValue],
    deltas: Mapping[str, int],
    *,
    rng: RngLike = None,
) -> List[str]:
    """Apply token-count ``deltas`` to a raw token sequence.

    Parameters
    ----------
    tokens:
        The original dataset as a sequence of token occurrences.
    deltas:
        Mapping from canonical token to the signed number of appearances
        to add (positive) or remove (negative).
    rng:
        Randomness source for choosing removal victims and insertion
        positions.

    Returns
    -------
    A new list of canonical token strings whose histogram equals the
    original histogram with ``deltas`` applied.
    """
    generator = ensure_rng(rng)
    canonical = [canonical_token(token) for token in tokens]

    # Plan removals: choose random occurrence indices per token.
    removal_indices: set = set()
    positions_by_token: Dict[str, List[int]] = {}
    removals = {token: -delta for token, delta in deltas.items() if delta < 0}
    if removals:
        for index, token in enumerate(canonical):
            if token in removals:
                positions_by_token.setdefault(token, []).append(index)
        for token, count in removals.items():
            positions = positions_by_token.get(token, [])
            if len(positions) < count:
                raise GenerationError(
                    f"cannot remove {count} appearances of {token!r}: only "
                    f"{len(positions)} present"
                )
            chosen = generator.choice(len(positions), size=count, replace=False)
            removal_indices.update(positions[i] for i in chosen)

    result = [token for index, token in enumerate(canonical) if index not in removal_indices]

    # Plan insertions: new appearances land at random positions.
    additions = {token: delta for token, delta in deltas.items() if delta > 0}
    for token, count in additions.items():
        for _ in range(count):
            position = int(generator.integers(0, len(result) + 1))
            result.insert(position, token)
    return result


def histogram_deltas(
    original: TokenHistogram, watermarked: TokenHistogram
) -> Dict[str, int]:
    """Signed per-token count changes turning ``original`` into ``watermarked``.

    Parameters
    ----------
    original, watermarked : TokenHistogram
        The before/after histograms; tokens present in only one side
        contribute their full count.

    Returns
    -------
    Dict[str, int]
        Token -> non-zero signed delta, ready for
        :func:`apply_deltas_to_tokens` or :func:`apply_deltas_streaming`.
    """
    deltas: Dict[str, int] = {}
    all_tokens = set(original.as_dict()) | set(watermarked.as_dict())
    for token in all_tokens:
        delta = watermarked.frequency(token) - original.frequency(token)
        if delta != 0:
            deltas[token] = delta
    return deltas


def transform_dataset(
    tokens: Sequence[TokenValue],
    original: TokenHistogram,
    watermarked: TokenHistogram,
    *,
    rng: RngLike = None,
) -> List[str]:
    """Edit ``tokens`` so its histogram matches ``watermarked``.

    The deltas are derived by diffing the two histograms
    (:func:`histogram_deltas`), so this function also serves the
    multi-watermarking and attack modules, which produce a target
    histogram first and then need a consistent dataset.
    """
    return apply_deltas_to_tokens(
        tokens, histogram_deltas(original, watermarked), rng=rng
    )


def apply_deltas_streaming(
    tokens: Iterable[TokenValue],
    deltas: Mapping[str, int],
    original_counts: Mapping[str, int],
    *,
    rng: RngLike = None,
) -> Iterator[str]:
    """Apply token-count ``deltas`` to a lazy token stream, yielding the edit.

    The streaming counterpart of :func:`apply_deltas_to_tokens` for
    datasets too large to materialise: the input is consumed once, the
    edited sequence is yielded incrementally, and memory stays bounded by
    the number of *edited* appearances (plus one counter per removed
    token), never by the stream length. Both edit kinds keep the paper's
    positional-secrecy requirement:

    * removal victims are uniformly random occurrences of each token,
      chosen by sampling occurrence ordinals against the known original
      counts before the stream is consumed;
    * insertions land at uniformly random positions of the *final*
      sequence, chosen by sampling slots of the output stream up front
      and interleaving the (shuffled) new appearances while writing.

    Parameters
    ----------
    tokens : Iterable[TokenValue]
        The original dataset as a lazy stream of token occurrences (e.g.
        :func:`repro.datasets.loaders.iter_tokens`).
    deltas : Mapping[str, int]
        Canonical token -> signed appearance change, as produced by
        diffing the original and watermarked histograms.
    original_counts : Mapping[str, int]
        Appearance counts of the original stream (a token->count mapping
        or anything with ``as_dict()``, e.g. a ``TokenHistogram`` built
        by one streaming ingestion pass). Needed to sample removal
        ordinals without buffering the stream.
    rng : RngLike, optional
        Randomness source for victim and position choices.

    Yields
    ------
    str
        Canonical tokens of the edited sequence, whose histogram equals
        the original counts with ``deltas`` applied.

    Raises
    ------
    GenerationError
        If a removal exceeds the recorded count of its token, or —
        detected at end of stream, before the trailing insertions are
        yielded — the stream disagrees with ``original_counts`` (total
        occurrences, or the occurrence count of any removed token).
    """
    generator = ensure_rng(rng)
    if hasattr(original_counts, "as_dict"):
        original_counts = original_counts.as_dict()

    # Removals: pre-sample which occurrence ordinals of each token vanish.
    removal_ordinals: Dict[str, frozenset] = {}
    removed_total = 0
    for token, delta in deltas.items():
        if delta >= 0:
            continue
        count = int(original_counts.get(token, 0))
        if count < -delta:
            raise GenerationError(
                f"cannot remove {-delta} appearances of {token!r}: only "
                f"{count} present"
            )
        chosen = generator.choice(count, size=-delta, replace=False)
        removal_ordinals[token] = frozenset(int(i) for i in chosen)
        removed_total += -delta

    # Insertions: pre-sample slots of the final output stream.
    additions: List[str] = []
    for token, delta in deltas.items():
        if delta > 0:
            additions.extend([token] * delta)
    original_total = sum(int(count) for count in original_counts.values())
    final_length = original_total - removed_total + len(additions)
    insert_at: Dict[int, List[str]] = {}
    if additions:
        generator.shuffle(additions)
        slots = generator.choice(final_length, size=len(additions), replace=False)
        for slot, token in zip(sorted(int(s) for s in slots), additions):
            insert_at.setdefault(slot, []).append(token)

    seen: Dict[str, int] = dict.fromkeys(removal_ordinals, 0)
    position = 0
    consumed = 0
    for value in tokens:
        token = canonical_token(value)
        consumed += 1
        ordinals = removal_ordinals.get(token)
        if ordinals is not None:
            ordinal = seen[token]
            seen[token] = ordinal + 1
            if ordinal in ordinals:
                continue
        while position in insert_at:
            for inserted in insert_at.pop(position):
                yield inserted
                position += 1
        yield token
        position += 1
    # The removal/insertion plan was sampled against ``original_counts``;
    # a stream that disagrees with it (the file changed between the
    # histogram pass and this pass) would silently realise the wrong
    # histogram, so fail loudly instead.
    if consumed != original_total:
        raise GenerationError(
            f"token stream disagrees with original_counts: consumed {consumed} "
            f"occurrences, expected {original_total}"
        )
    for token, ordinals in removal_ordinals.items():
        expected = int(original_counts.get(token, 0))
        if seen[token] != expected:
            raise GenerationError(
                f"token stream disagrees with original_counts: saw "
                f"{seen[token]} occurrences of {token!r}, expected {expected}"
            )
    # Insertion slots past the last kept token flush in slot order.
    for slot in sorted(insert_at):
        for inserted in insert_at[slot]:
            yield inserted


def verify_transformation(
    transformed: Sequence[str],
    expected: TokenHistogram,
) -> bool:
    """Check that a transformed token sequence matches the target histogram."""
    return TokenHistogram.from_tokens(transformed).as_dict() == expected.as_dict()


__all__ = [
    "apply_deltas_to_tokens",
    "apply_deltas_streaming",
    "histogram_deltas",
    "transform_dataset",
    "verify_transformation",
]
