"""Seed (dict-loop) implementations kept as executable specification.

The vectorized engine (:mod:`repro.core.arrays`, the array-backed
histogram, :class:`repro.core.similarity.SimilarityTracker`, the batched
detector) replaced the original pure-Python hot paths of this
reproduction. The originals are preserved here, byte-for-byte in
behaviour, for two purposes:

* **golden parity tests** — ``tests/test_engine_parity.py`` asserts the
  vectorized engine produces identical generation and detection outcomes
  on randomized and adversarial inputs;
* **benchmarks** — ``benchmarks/bench_engine_scaling.py`` measures the
  speedup of the engine against these reference implementations.

Nothing in the production pipeline imports this module; it must never be
"optimised", or the parity tests lose their anchor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, PairEvidence
from repro.core.eligibility import EligiblePair
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.knapsack import BudgetedSelection
from repro.core.modification import PairAdjustment, plan_adjustment
from repro.core.secrets import WatermarkSecret
from repro.core.similarity import similarity_percent
from repro.core.tokens import TokenValue
from repro.exceptions import DetectionError, MatchingError


def select_within_budget_reference(
    histogram: TokenHistogram,
    candidates: Sequence[EligiblePair],
    budget: float,
    *,
    metric: str = "cosine",
    order_by_cost: bool = True,
    max_pairs: Optional[int] = None,
) -> BudgetedSelection:
    """The seed budget selection: full similarity recompute per candidate.

    This is the O(n·m) loop the incremental-tracker rewrite in
    :func:`repro.core.knapsack.select_within_budget` replaced — every
    candidate pair triggers a full union-alignment and metric evaluation
    over all n tokens.
    """
    if budget < 0 or budget > 100:
        raise MatchingError(f"budget b must be within [0, 100], got {budget}")
    minimum_similarity = 100.0 - budget
    original_counts = histogram.as_dict()
    ordered = (
        sorted(candidates, key=lambda item: (item.cost, item.pair))
        if order_by_cost
        else list(candidates)
    )

    selected: List[EligiblePair] = []
    adjustments: List[PairAdjustment] = []
    rejected: List[EligiblePair] = []
    working = histogram
    current_similarity = 100.0

    for item in ordered:
        if max_pairs is not None and len(selected) >= max_pairs:
            rejected.append(item)
            continue
        adjustment = plan_adjustment(
            working.frequency(item.pair.first),
            working.frequency(item.pair.second),
            item.modulus,
            item.pair,
        )
        if adjustment.cost == 0:
            # Already aligned: watermarking this pair is free.
            selected.append(item)
            adjustments.append(adjustment)
            continue
        tentative = working.with_updates(adjustment.as_deltas())
        tentative_similarity = similarity_percent(
            original_counts, tentative.as_dict(), metric=metric
        )
        if tentative_similarity + 1e-12 >= minimum_similarity:
            selected.append(item)
            adjustments.append(adjustment)
            working = tentative
            current_similarity = tentative_similarity
        else:
            rejected.append(item)

    return BudgetedSelection(
        selected=tuple(selected),
        adjustments=tuple(adjustments),
        rejected=tuple(rejected),
        similarity_percent=current_similarity,
    )


def detect_reference(
    data: Union[Sequence[TokenValue], TokenHistogram],
    secret: WatermarkSecret,
    config: Optional[DetectionConfig] = None,
) -> DetectionResult:
    """The seed ``WM_Detect`` loop: per-pair hashing on every call.

    Every invocation recomputes ``s_ij`` for every stored pair (two
    SHA-256 evaluations each) and walks the pairs in a Python loop —
    exactly what the seed ``WatermarkDetector.detect`` did before moduli
    caching and the vectorized verification pass.
    """
    if len(secret.pairs) == 0:
        raise DetectionError("the secret list contains no watermarked pairs")
    config = config or DetectionConfig()
    histogram = (
        data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
    )
    evidence: List[PairEvidence] = []
    accepted_pairs = 0
    for pair in secret.pairs:
        modulus = pair_modulus(pair.first, pair.second, secret.secret, secret.modulus_cap)
        threshold = config.threshold_for(modulus)
        present = pair.first in histogram and pair.second in histogram
        if not present:
            evidence.append(
                PairEvidence(
                    pair=pair,
                    present=False,
                    modulus=modulus,
                    remainder=None,
                    threshold=threshold,
                    accepted=False,
                )
            )
            continue
        if modulus < 2:
            # A modulus of 0 or 1 carries no information (the generation
            # algorithm never selects such pairs); treat the pair as
            # unverifiable so forged secrets cannot exploit it.
            evidence.append(
                PairEvidence(
                    pair=pair,
                    present=True,
                    modulus=modulus,
                    remainder=None,
                    threshold=threshold,
                    accepted=False,
                )
            )
            continue
        difference = histogram.frequency(pair.first) - histogram.frequency(pair.second)
        remainder = difference % modulus
        if config.symmetric_tolerance:
            accepted = min(remainder, modulus - remainder) <= threshold
        else:
            accepted = remainder <= threshold
        if accepted:
            accepted_pairs += 1
        evidence.append(
            PairEvidence(
                pair=pair,
                present=True,
                modulus=modulus,
                remainder=remainder,
                threshold=threshold,
                accepted=accepted,
            )
        )
    required = config.required_pairs(len(secret.pairs))
    return DetectionResult(
        accepted=accepted_pairs >= required,
        accepted_pairs=accepted_pairs,
        required_pairs=required,
        total_pairs=len(secret.pairs),
        evidence=tuple(evidence),
    )


__all__ = ["select_within_budget_reference", "detect_reference"]
