"""Cryptographic hashing primitives for FreqyWM.

The paper derives a per-pair modulus ``s_ij`` from a keyed, nested hash::

    s_ij = H(tk_i || H(R || tk_j)) mod z

where ``H`` is a collision-resistant hash (SHA-256 in the paper's
implementation), ``R`` is a high-entropy secret sampled once per
watermark, ``z`` caps the modulus, and ``||`` denotes concatenation. The
nesting makes ``s_ij`` order-sensitive — swapping the pair members yields
an unrelated value — which matters because the pair is stored with its
higher-frequency member first.

This module exposes that construction plus small helpers for serialising
secrets. Everything is pure and deterministic so watermark detection can
recompute exactly the same moduli years later from the stored secret list.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Callable

#: Security parameter (output bits of the hash) used throughout the paper.
DEFAULT_SECURITY_BITS = 256

#: Byte used to separate fields before hashing so that concatenation is
#: unambiguous (``"ab" || "c"`` cannot collide with ``"a" || "bc"``).
_FIELD_SEPARATOR = b"\x00"

HashFunction = Callable[[bytes], bytes]


def sha256_hash(data: bytes) -> bytes:
    """SHA-256 digest of ``data`` — the paper's instantiation of ``H``."""
    return hashlib.sha256(data).digest()


def _encode(value: "str | bytes | int") -> bytes:
    """Encode a secret component or token into bytes for hashing."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        # Fixed-width little-endian-free encoding: decimal string keeps the
        # construction readable and portable across platforms.
        return str(value).encode("ascii")
    raise TypeError(f"cannot encode {type(value)!r} for hashing")


def digest_to_int(digest: bytes) -> int:
    """Interpret a hash digest as a non-negative big-endian integer."""
    return int.from_bytes(digest, "big")


def pair_modulus(
    token_i: str,
    token_j: str,
    secret: int,
    z: int,
    *,
    hash_function: HashFunction = sha256_hash,
) -> int:
    """Compute ``s_ij = H(tk_i || H(R || tk_j)) mod z``.

    Parameters
    ----------
    token_i, token_j:
        Canonical token strings; ``token_i`` is the higher-frequency member
        of the pair by convention.
    secret:
        The high-entropy watermarking secret ``R`` as an integer.
    z:
        Upper cap on the modulus; the result lies in ``[0, z)``. Values of
        0 or 1 returned here make the pair unusable (modulo 0 is undefined
        and everything is congruent mod 1), which the eligibility stage
        filters out.
    hash_function:
        Alternative hash, mainly for testing; defaults to SHA-256.
    """
    if z < 2:
        raise ValueError(f"modulus cap z must be at least 2, got {z}")
    inner = hash_function(_encode(secret) + _FIELD_SEPARATOR + _encode(token_j))
    outer = hash_function(_encode(token_i) + _FIELD_SEPARATOR + inner)
    return digest_to_int(outer) % z


class PairModulusCache:
    """Memoised ``s_ij`` derivation for one ``(R, z)`` pair.

    The nested construction ``H(tk_i || H(R || tk_j))`` repeats the inner
    hash for every pair sharing the same second member, and repeats both
    hashes entirely when the same pair is scanned again — which is exactly
    what happens when many datasets are watermarked under one owner secret
    (per-buyer copies, corpus snapshots, shards). The cache memoises the
    inner digests per second token and the final modulus per ordered pair,
    so a batch embedding run pays each SHA-256 derivation once.

    Values are bit-identical to :func:`pair_modulus` by construction — the
    cache only skips *recomputation*, never changes the arithmetic — which
    is what lets :meth:`repro.core.generator.WatermarkGenerator.generate_many`
    share one cache across a whole batch while staying exactly equal to
    the sequential path.

    Memory stays bounded even when one owner secret is applied to an
    endless stream of *different* vocabularies: past ``max_entries``
    memoised pairs the cache resets (epoch-style — cheaper and simpler
    than per-entry LRU, and a workload that overflows it has little
    cross-dataset overlap to lose anyway).

    Parameters
    ----------
    secret:
        The high-entropy watermarking secret ``R``.
    z:
        The modulus cap (must be >= 2, as for :func:`pair_modulus`).
    hash_function:
        Alternative hash, mainly for testing; defaults to SHA-256.
    max_entries:
        Pair memo count that triggers a reset (``None`` disables).
    """

    #: Default pair-memo bound (~100 MB of dict at worst).
    DEFAULT_MAX_ENTRIES = 1_000_000

    __slots__ = (
        "secret",
        "z",
        "max_entries",
        "_hash",
        "_inner",
        "_moduli",
        "hits",
        "misses",
        "resets",
    )

    def __init__(
        self,
        secret: int,
        z: int,
        *,
        hash_function: HashFunction = sha256_hash,
        max_entries: "int | None" = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if z < 2:
            raise ValueError(f"modulus cap z must be at least 2, got {z}")
        self.secret = secret
        self.z = z
        self.max_entries = max_entries
        self._hash = hash_function
        self._inner: dict = {}
        self._moduli: dict = {}
        self.hits = 0
        self.misses = 0
        self.resets = 0

    def __len__(self) -> int:
        return len(self._moduli)

    def modulus(self, token_i: str, token_j: str) -> int:
        """``pair_modulus(token_i, token_j, R, z)``, memoised."""
        key = (token_i, token_j)
        value = self._moduli.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        inner = self._inner.get(token_j)
        if inner is None:
            inner = self._hash(
                _encode(self.secret) + _FIELD_SEPARATOR + _encode(token_j)
            )
            self._inner[token_j] = inner
        outer = self._hash(_encode(token_i) + _FIELD_SEPARATOR + inner)
        value = digest_to_int(outer) % self.z
        if self.max_entries is not None and len(self._moduli) >= self.max_entries:
            self._moduli.clear()
            self._inner.clear()
            self.resets += 1
        self._moduli[key] = value
        return value

    def matches(self, secret: int, z: int) -> bool:
        """Whether this cache was built for exactly ``(secret, z)``."""
        return self.secret == secret and self.z == z


def keyed_fingerprint(secret: int, *fields: "str | bytes | int") -> str:
    """HMAC-SHA256 fingerprint of ``fields`` under ``secret``.

    Used by the watermark registry and the re-watermarking defence to
    commit to a watermark description without revealing the secret.
    """
    key = _encode(secret)
    message = _FIELD_SEPARATOR.join(_encode(field) for field in fields)
    return hmac.new(key, message, hashlib.sha256).hexdigest()


def generate_secret(bits: int = DEFAULT_SECURITY_BITS, *, rng=None) -> int:
    """Sample the high-entropy secret ``R`` with ``bits`` bits of entropy.

    With ``rng=None`` the OS CSPRNG is used (the secure default). Passing a
    seed or :class:`numpy.random.Generator` produces a reproducible secret,
    which the experiments rely on; this trades cryptographic strength for
    reproducibility and must not be used to protect real datasets.
    """
    if bits <= 0:
        raise ValueError("secret size in bits must be positive")
    if rng is None:
        import secrets as _secrets

        return _secrets.randbits(bits)
    from repro.utils.rng import random_bigint

    return random_bigint(rng, bits)


__all__ = [
    "DEFAULT_SECURITY_BITS",
    "HashFunction",
    "sha256_hash",
    "digest_to_int",
    "pair_modulus",
    "PairModulusCache",
    "keyed_fingerprint",
    "generate_secret",
]
