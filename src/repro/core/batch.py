"""Batch detection over many suspected datasets.

Marketplace-scale operation means screening *fleets* of suspected
datasets against one secret list — every buyer's copy, every scraped
re-publication, every version in a provenance chain. Running the
single-dataset detector in a loop repays the SHA-256 modulus derivation
and the per-pair Python loop for every dataset; this module exposes the
batched path instead: the moduli are derived once and all stored pairs of
all datasets are verified with a single vectorized
``(f_i - f_j) mod s_ij <= t`` matrix pass (see
:meth:`repro.core.detector.WatermarkDetector.detect_many`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, SuspectData, WatermarkDetector
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError


@dataclass(frozen=True)
class BatchDetectionReport:
    """Outcome of screening a batch of suspected datasets.

    Attributes
    ----------
    results:
        One :class:`DetectionResult` per input dataset, in input order.
    """

    results: Tuple[DetectionResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> DetectionResult:
        return self.results[index]

    @property
    def accepted_flags(self) -> Tuple[bool, ...]:
        """Per-dataset verdicts, aligned with the input order."""
        return tuple(result.accepted for result in self.results)

    @property
    def accepted_count(self) -> int:
        """Number of datasets on which the watermark verified."""
        return sum(result.accepted for result in self.results)

    @property
    def accepted_indices(self) -> Tuple[int, ...]:
        """Input positions of the datasets that verified."""
        return tuple(
            index for index, result in enumerate(self.results) if result.accepted
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        total = len(self.results)
        return {
            "datasets": total,
            "accepted_datasets": self.accepted_count,
            "accepted_rate": self.accepted_count / total if total else 0.0,
            "required_pairs": self.results[0].required_pairs if total else 0,
            "total_pairs": self.results[0].total_pairs if total else 0,
        }


def detect_many(
    datasets: Sequence[SuspectData],
    secret: Optional[WatermarkSecret] = None,
    config: Optional[DetectionConfig] = None,
    *,
    detector: Optional[WatermarkDetector] = None,
    collect_evidence: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> BatchDetectionReport:
    """Run ``WM_Detect`` over a batch of suspected datasets at once.

    Parameters
    ----------
    datasets : Sequence[SuspectData]
        Suspected datasets — raw token sequences or pre-built
        :class:`~repro.core.histogram.TokenHistogram` instances, mixed
        freely.
    secret : WatermarkSecret, optional
        The owner's secret list ``L_sc``. May be omitted when a prebuilt
        ``detector`` is supplied.
    config : DetectionConfig, optional
        Detection thresholds shared by the whole batch (defaults to the
        strict ``t = 0``, ``k = 50%`` setting).
    detector : WatermarkDetector, optional
        A prebuilt detector to reuse — the moduli precomputation is then
        skipped entirely, which is what the detector-caching service
        layer (:mod:`repro.service`) relies on. When both ``secret`` and
        ``detector`` are given they must commit to the same watermark.
    collect_evidence : bool, optional
        When True, per-pair :class:`~repro.core.detector.PairEvidence` is
        materialised for every dataset (slower; intended for dispute /
        debugging flows, not for large screens).
    workers : int, optional
        When greater than 1, the batch is partitioned across that many
        worker processes via
        :class:`~repro.core.sharding.ShardedDetectionPool`; verdicts and
        ordering are identical to the in-process path. ``None`` or ``1``
        runs in-process (the default).
    chunk_size : int, optional
        Datasets per dispatched worker chunk (sharded mode only).

    Returns
    -------
    BatchDetectionReport
        One result per dataset, in input order.
    """
    if detector is None:
        if secret is None:
            raise DetectionError("detect_many needs a secret or a prebuilt detector")
        detector = WatermarkDetector(secret, config)
    else:
        if secret is not None and secret.fingerprint() != detector.secret.fingerprint():
            raise DetectionError(
                "detect_many was given a detector built for a different secret"
            )
        if config is not None and config.fingerprint() != detector.config.fingerprint():
            raise DetectionError(
                "detect_many was given a config that differs from the prebuilt "
                "detector's thresholds"
            )
    if workers is not None and workers > 1:
        # Imported here: sharding imports BatchDetectionReport from this
        # module, so the dependency must stay one-way at import time.
        from repro.core.sharding import ShardedDetectionPool

        with ShardedDetectionPool(
            detector.secret,
            detector.config,
            workers=workers,
            chunk_size=chunk_size,
            local_detector=detector,
        ) as pool:
            return pool.detect_many(datasets, collect_evidence=collect_evidence)
    results = detector.detect_many(datasets, collect_evidence=collect_evidence)
    return BatchDetectionReport(results=tuple(results))


__all__ = ["BatchDetectionReport", "detect_many"]
