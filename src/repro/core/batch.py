"""Batch execution: many datasets, many secrets, both directions.

Marketplace-scale operation means running the two algorithms over
*fleets*, not single inputs:

* :func:`detect_many` — one secret against many suspected datasets
  (screening every buyer's copy) with a single vectorized
  ``(f_i - f_j) mod s_ij <= t`` matrix pass (see
  :meth:`repro.core.detector.WatermarkDetector.detect_many`);
* :func:`detect_many_secrets` — many secrets against one dataset
  (Monte-Carlo forged candidates, per-buyer leak attribution,
  provenance-chain stages) with one stacked vectorized pass instead of
  constructing a detector per secret;
* :func:`embed_many` — ``WM_Generate`` over many datasets, amortising
  secret derivation, pair-modulus hashing and eligibility
  precomputation across the batch (and across worker processes), with
  outputs bit-identical to the sequential generator loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import (
    DetectionResult,
    PairEvidence,
    SuspectData,
    WatermarkDetector,
    build_pair_evidence,
    verify_pair_arrays,
)
from repro.core.embedding import BatchEmbeddingReport, EmbedData, ShardedEmbeddingPool
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError
from repro.exec.blobs import dataplane_enabled, maybe_blob
from repro.exec.chunking import derive_chunk_size, split_chunks
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs
from repro.exec.scheduler import TaskSpec, create_scheduler, register_task_function
from repro.utils.rng import RngLike


def _wants_sharding(policy: ExecutionPolicy) -> bool:
    """Whether a policy asks the batch helpers to dispatch via a scheduler.

    The batch functions historically default to in-process execution, so
    ``workers=None`` stays in-process here (unlike the pools, whose
    ``workers=None`` means "all visible cores"); any non-local scheduler
    always shards.
    """
    return policy.scheduler != "local" or (
        policy.workers is not None and policy.workers > 1
    )


@dataclass(frozen=True)
class BatchDetectionReport:
    """Outcome of screening a batch of suspected datasets.

    Attributes
    ----------
    results:
        One :class:`DetectionResult` per input dataset, in input order.
    """

    results: Tuple[DetectionResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> DetectionResult:
        return self.results[index]

    @property
    def accepted_flags(self) -> Tuple[bool, ...]:
        """Per-dataset verdicts, aligned with the input order."""
        return tuple(result.accepted for result in self.results)

    @property
    def accepted_count(self) -> int:
        """Number of datasets on which the watermark verified."""
        return sum(result.accepted for result in self.results)

    @property
    def accepted_indices(self) -> Tuple[int, ...]:
        """Input positions of the datasets that verified."""
        return tuple(
            index for index, result in enumerate(self.results) if result.accepted
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        total = len(self.results)
        return {
            "datasets": total,
            "accepted_datasets": self.accepted_count,
            "accepted_rate": self.accepted_count / total if total else 0.0,
            "required_pairs": self.results[0].required_pairs if total else 0,
            "total_pairs": self.results[0].total_pairs if total else 0,
        }


def detect_many(
    datasets: Sequence[SuspectData],
    secret: Optional[WatermarkSecret] = None,
    config: Optional[DetectionConfig] = None,
    *,
    detector: Optional[WatermarkDetector] = None,
    collect_evidence: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    backend: BackendLike = None,
) -> BatchDetectionReport:
    """Run ``WM_Detect`` over a batch of suspected datasets at once.

    Parameters
    ----------
    datasets : Sequence[SuspectData]
        Suspected datasets — raw token sequences or pre-built
        :class:`~repro.core.histogram.TokenHistogram` instances, mixed
        freely.
    secret : WatermarkSecret, optional
        The owner's secret list ``L_sc``. May be omitted when a prebuilt
        ``detector`` is supplied.
    config : DetectionConfig, optional
        Detection thresholds shared by the whole batch (defaults to the
        strict ``t = 0``, ``k = 50%`` setting).
    detector : WatermarkDetector, optional
        A prebuilt detector to reuse — the moduli precomputation is then
        skipped entirely, which is what the detector-caching service
        layer (:mod:`repro.service`) relies on. When both ``secret`` and
        ``detector`` are given they must commit to the same watermark.
    collect_evidence : bool, optional
        When True, per-pair :class:`~repro.core.detector.PairEvidence` is
        materialised for every dataset (slower; intended for dispute /
        debugging flows, not for large screens).
    policy : ExecutionPolicy, optional
        How to parallelise the batch. ``policy.workers > 1`` partitions
        the datasets across a
        :class:`~repro.core.sharding.ShardedDetectionPool` (local worker
        processes, or ``freqywm worker`` processes when
        ``policy.scheduler == "remote"``); verdicts and ordering are
        identical to the in-process path. The default runs in-process.
    workers : int, optional
        Deprecated alias for ``policy=ExecutionPolicy(workers=...)``.
    chunk_size : int, optional
        Deprecated alias for ``policy=ExecutionPolicy(chunk_size=...)``.
    backend :
        Compute backend for the verification pass (name, instance or
        ``None`` for the ``FREQYWM_BACKEND`` / NumPy default). With a
        prebuilt ``detector`` the detector's own backend is used and an
        explicit conflicting ``backend`` is rejected.

    Returns
    -------
    BatchDetectionReport
        One result per dataset, in input order.
    """
    if detector is None:
        if secret is None:
            raise DetectionError("detect_many needs a secret or a prebuilt detector")
        detector = WatermarkDetector(secret, config, backend=backend)
    else:
        if secret is not None and secret.fingerprint() != detector.secret.fingerprint():
            raise DetectionError(
                "detect_many was given a detector built for a different secret"
            )
        if config is not None and config.fingerprint() != detector.config.fingerprint():
            raise DetectionError(
                "detect_many was given a config that differs from the prebuilt "
                "detector's thresholds"
            )
        if backend is not None and resolve_backend(backend) is not detector.backend:
            raise DetectionError(
                "detect_many was given a detector built for backend "
                f"{detector.backend.name!r} but backend "
                f"{resolve_backend(backend).name!r} was requested"
            )
    exec_policy = policy_from_kwargs(
        policy, workers=workers, chunk_size=chunk_size, caller="detect_many"
    )
    if _wants_sharding(exec_policy):
        # Imported here: sharding imports BatchDetectionReport from this
        # module, so the dependency must stay one-way at import time.
        from repro.core.sharding import ShardedDetectionPool

        with ShardedDetectionPool(
            detector.secret,
            detector.config,
            policy=exec_policy,
            local_detector=detector,
            backend=detector.backend,
        ) as pool:
            return pool.detect_many(datasets, collect_evidence=collect_evidence)
    results = detector.detect_many(datasets, collect_evidence=collect_evidence)
    return BatchDetectionReport(results=tuple(results))


def detect_many_secrets(
    data: SuspectData,
    secrets: Sequence[WatermarkSecret],
    config: Optional[DetectionConfig] = None,
    *,
    collect_evidence: bool = False,
    detector_cache: Optional[DetectorCache] = None,
    backend: BackendLike = None,
    policy: Optional[ExecutionPolicy] = None,
) -> List[DetectionResult]:
    """Run ``WM_Detect`` for many secrets against one dataset at once.

    This is the transpose of :func:`detect_many`: the stored pairs of
    *all* secrets are stacked into one flat array, the dataset's
    frequencies are looked up once for the union of pair members, and a
    single vectorized modulo pass verifies everything — no
    per-secret :class:`~repro.core.detector.WatermarkDetector`
    construction. Verdicts are identical to building one detector per
    secret and calling :meth:`~repro.core.detector.WatermarkDetector.detect`.

    The callers this serves all evaluate candidate-secret fleets against
    one histogram: the Monte-Carlo guess attack (hundreds of forged
    secrets), per-buyer leak attribution, and provenance-chain stage
    reports.

    Parameters
    ----------
    data : SuspectData
        The suspected dataset — a raw token sequence or a pre-built
        :class:`~repro.core.histogram.TokenHistogram`.
    secrets : Sequence[WatermarkSecret]
        The candidate secret lists; every one must store at least one
        pair (as :class:`WatermarkDetector` requires).
    config : DetectionConfig, optional
        Detection thresholds shared by all candidates (defaults to the
        strict ``t = 0``, ``k = 50%`` setting).
    collect_evidence : bool, optional
        When True, per-pair :class:`~repro.core.detector.PairEvidence`
        is materialised for every secret.
    detector_cache : DetectorCache, optional
        When given, each secret's moduli/threshold arrays are taken from
        the cached :class:`WatermarkDetector` (constructed once per
        ``(secret, config)``, reused across calls) instead of re-deriving
        the SHA-256 moduli on every invocation. This is how recurring
        many-secrets screens — leak attribution over a registry's vault,
        provenance-chain reports — make repeated calls construction-free;
        verdicts are identical either way.
    backend :
        Compute backend for the stacked verification pass (name, instance
        or ``None`` for the ``FREQYWM_BACKEND`` / NumPy default). Cached
        detectors are looked up under the same backend, so one
        ``detector_cache`` may serve callers on different backends
        without ever mixing them.
    policy : ExecutionPolicy, optional
        When the policy asks for parallelism (``workers > 1`` or a
        remote scheduler), the *secrets* are partitioned into chunks and
        screened by scheduler workers, each running this same stacked
        pass over its chunk; results are identical and in input order.
        ``detector_cache`` is an in-process optimisation and is not
        consulted by the sharded path.

    Returns
    -------
    List[DetectionResult]
        One result per secret, in input order.
    """
    if not secrets:
        return []
    detection = config or DetectionConfig()
    resolved_backend = resolve_backend(backend)
    histogram = (
        data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
    )
    if policy is not None and _wants_sharding(policy) and len(secrets) > 1:
        return _detect_secrets_sharded(
            histogram,
            secrets,
            detection,
            collect_evidence,
            resolved_backend,
            policy,
        )
    arrays = histogram.arrays()
    first_tokens: List[str] = []
    second_tokens: List[str] = []
    offsets: List[int] = [0]
    if detector_cache is not None:
        moduli_arrays: List[np.ndarray] = []
        threshold_arrays: List[np.ndarray] = []
        for secret in secrets:
            if len(secret.pairs) == 0:
                raise DetectionError("a secret list contains no watermarked pairs")
            detector = detector_cache.get(secret, detection, backend=resolved_backend)
            firsts, seconds, secret_moduli, secret_thresholds = (
                detector.pair_components()
            )
            first_tokens.extend(firsts)
            second_tokens.extend(seconds)
            moduli_arrays.append(secret_moduli)
            threshold_arrays.append(secret_thresholds)
            offsets.append(len(first_tokens))
        moduli = np.concatenate(moduli_arrays)
        thresholds = np.concatenate(threshold_arrays)
    else:
        moduli_list: List[int] = []
        for secret in secrets:
            if len(secret.pairs) == 0:
                raise DetectionError("a secret list contains no watermarked pairs")
            cache = PairModulusCache(secret.secret, secret.modulus_cap)
            for pair in secret.pairs:
                first_tokens.append(pair.first)
                second_tokens.append(pair.second)
                moduli_list.append(cache.modulus(pair.first, pair.second))
            offsets.append(len(first_tokens))
        moduli = np.asarray(moduli_list, dtype=np.int64)
        thresholds = np.fromiter(
            (detection.threshold_for(int(modulus)) for modulus in moduli_list),
            dtype=np.int64,
            count=len(moduli_list),
        )
    # Same guard as the detector: a modulus of 0 or 1 carries no
    # information, so such pairs are unverifiable by construction.
    valid = moduli >= 2
    safe_moduli = np.where(valid, moduli, 1)
    accepted, present, remainder = verify_pair_arrays(
        arrays.frequencies(first_tokens),
        arrays.frequencies(second_tokens),
        safe_moduli=safe_moduli,
        valid=valid,
        thresholds=thresholds,
        symmetric_tolerance=detection.symmetric_tolerance,
        backend=resolved_backend,
    )
    results: List[DetectionResult] = []
    for index, secret in enumerate(secrets):
        low, high = offsets[index], offsets[index + 1]
        accepted_pairs = int(accepted[low:high].sum())
        required = detection.required_pairs(high - low)
        evidence: Tuple[PairEvidence, ...] = ()
        if collect_evidence:
            evidence = build_pair_evidence(
                secret.pairs,
                accepted[low:high],
                present[low:high],
                remainder[low:high],
                moduli[low:high],
                thresholds[low:high],
                valid[low:high],
            )
        results.append(
            DetectionResult(
                accepted=accepted_pairs >= required,
                accepted_pairs=accepted_pairs,
                required_pairs=required,
                total_pairs=high - low,
                evidence=evidence,
            )
        )
    return results


def _detect_secrets_chunk(_state: object, payload: tuple) -> List[DetectionResult]:
    """Scheduler task: the stacked many-secrets pass over one secret chunk."""
    histogram, chunk, detection, collect_evidence, backend_name = payload
    return detect_many_secrets(
        histogram,
        chunk,
        detection,
        collect_evidence=collect_evidence,
        backend=backend_name,
    )


register_task_function("secrets.chunk", _detect_secrets_chunk)


def _detect_secrets_sharded(
    histogram: TokenHistogram,
    secrets: Sequence[WatermarkSecret],
    detection: DetectionConfig,
    collect_evidence: bool,
    backend,
    policy: ExecutionPolicy,
) -> List[DetectionResult]:
    """Partition a many-secrets screen across scheduler workers."""
    scheduler = create_scheduler(policy)
    try:
        size = derive_chunk_size(
            len(secrets), scheduler.workers, chunk_size=policy.chunk_size
        )
        # The histogram is identical across every chunk task, so when the
        # data plane is live it ships once as a content-addressed blob
        # instead of being re-pickled into each payload.
        histogram_value: object = histogram
        histogram_refs: Tuple[str, ...] = ()
        if dataplane_enabled() and scheduler.ships_payloads:
            histogram_value, histogram_refs = maybe_blob(histogram)
        specs = [
            TaskSpec(
                fingerprint=f"secrets:{detection.fingerprint()}:{index}",
                function="secrets.chunk",
                payload=(
                    histogram_value,
                    chunk,
                    detection,
                    collect_evidence,
                    backend.name,
                ),
                blob_refs=histogram_refs,
            )
            for index, chunk in enumerate(split_chunks(list(secrets), size))
        ]
        results: List[DetectionResult] = []
        for chunk_results in scheduler.run(specs):
            results.extend(chunk_results)
        return results
    finally:
        scheduler.close()


def embed_many(
    datasets: Sequence[EmbedData],
    config: Optional[GenerationConfig] = None,
    *,
    rng: RngLike = None,
    secret_value: Optional[int] = None,
    secret_values: Optional[Sequence[Optional[int]]] = None,
    policy: Optional[ExecutionPolicy] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> BatchEmbeddingReport:
    """Run ``WM_Generate`` over a batch of datasets at once.

    The batched path amortises what the sequential generator loop
    re-derives per dataset — pair-modulus hashing per owner secret,
    eligibility precomputation per histogram — and optionally shards the
    batch across worker processes; outputs are bit-identical to calling
    :meth:`~repro.core.generator.WatermarkGenerator.generate` per
    dataset (``tests/test_embedding.py`` holds the golden parity).

    Parameters
    ----------
    datasets : Sequence[EmbedData]
        Datasets to watermark — raw token sequences or pre-built
        :class:`~repro.core.histogram.TokenHistogram` instances, mixed
        freely. Passing the same histogram object several times (with
        different ``secret_values``) is the candidate-secrets mode.
    config : GenerationConfig, optional
        Generation parameters shared by the whole batch.
    rng :
        Seed (or generator) for every random choice, as for
        :class:`~repro.core.generator.WatermarkGenerator`. Sharded mode
        (``workers > 1``) accepts only a plain seed or ``None``.
    secret_value : int, optional
        One explicit secret ``R`` shared by every dataset — the
        one-owner-many-datasets mode that maximises cross-dataset
        modulus reuse. Mutually exclusive with ``secret_values``.
    secret_values : Sequence[int | None], optional
        Per-dataset explicit secrets, aligned with ``datasets``.
    policy : ExecutionPolicy, optional
        How to parallelise the batch. ``policy.workers > 1`` partitions
        the datasets across a
        :class:`~repro.core.embedding.ShardedEmbeddingPool` (local or
        remote, per ``policy.scheduler``); results and ordering are
        identical to the in-process path. The default runs in-process.
    workers : int, optional
        Deprecated alias for ``policy=ExecutionPolicy(workers=...)``.
    chunk_size : int, optional
        Deprecated alias for ``policy=ExecutionPolicy(chunk_size=...)``.

    Returns
    -------
    BatchEmbeddingReport
        One :class:`~repro.core.generator.WatermarkResult` per dataset,
        in input order.
    """
    from repro.core.generator import WatermarkGenerator
    from repro.exceptions import GenerationError

    if secret_value is not None and secret_values is not None:
        raise GenerationError(
            "pass either one shared secret_value or per-dataset secret_values, "
            "not both"
        )
    values: Optional[List[Optional[int]]] = None
    if secret_value is not None:
        values = [secret_value] * len(datasets)
    elif secret_values is not None:
        values = list(secret_values)
    exec_policy = policy_from_kwargs(
        policy, workers=workers, chunk_size=chunk_size, caller="embed_many"
    )
    if _wants_sharding(exec_policy):
        with ShardedEmbeddingPool(
            config,
            seed=rng,  # validated by the pool: plain seed or None
            policy=exec_policy,
        ) as pool:
            return pool.embed_many(datasets, secret_values=values)
    generator = WatermarkGenerator(config, rng=rng)
    return BatchEmbeddingReport(
        results=tuple(generator.generate_many(datasets, secret_values=values))
    )


__all__ = [
    "BatchDetectionReport",
    "BatchEmbeddingReport",
    "detect_many",
    "detect_many_secrets",
    "embed_many",
]
