"""Graph representation of the eligible-pair set.

Section III-B2 reduces optimal pair selection to Maximum Weight Matching
on an undirected graph ``G = (V, E)`` where vertices are tokens, edges are
eligible pairs, and the weight of edge ``(v_i, v_j)`` is::

    w(e) = T - ((f_i - f_j) mod s_ij)

with ``T`` a constant larger than any remainder (the paper suggests any
value above the largest frequency difference among eligible pairs). Under
this weighting a *maximum*-weight matching simultaneously favours many
edges and small remainders, i.e. many watermarked pairs that are cheap to
embed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.core.eligibility import EligiblePair
from repro.core.tokens import TokenPair
from repro.exceptions import MatchingError


def choose_weight_offset(pairs: Sequence[EligiblePair]) -> int:
    """Pick the constant ``T`` used to convert remainders into weights.

    Any value strictly larger than every remainder (equivalently, every
    frequency difference) works; we use ``max difference + max modulus + 1``
    so weights stay positive even for degenerate inputs.
    """
    if not pairs:
        return 1
    max_difference = max(item.frequency_difference for item in pairs)
    max_modulus = max(item.modulus for item in pairs)
    return max_difference + max_modulus + 1


def build_pair_graph(
    pairs: Sequence[EligiblePair],
    *,
    weight_offset: Optional[int] = None,
) -> nx.Graph:
    """Build the weighted eligible-pair graph.

    Each edge stores three attributes: ``weight`` (``T - cost``, what MWM
    maximises), ``cost`` (the number of appearance changes needed to
    watermark the pair) and ``eligible`` (the originating
    :class:`EligiblePair` object, so downstream stages can recover the
    modulus without recomputing hashes).
    """
    offset = choose_weight_offset(pairs) if weight_offset is None else weight_offset
    graph = nx.Graph()
    for item in pairs:
        if item.cost >= offset:
            raise MatchingError(
                "weight offset T must exceed every pair cost; "
                f"got T={offset} <= cost={item.cost}"
            )
        graph.add_edge(
            item.pair.first,
            item.pair.second,
            weight=offset - item.cost,
            cost=item.cost,
            eligible=item,
        )
    return graph


def maximum_weight_matching(graph: nx.Graph) -> List[EligiblePair]:
    """Run Maximum Weight Matching and return the matched eligible pairs.

    ``maxcardinality=True`` mirrors the paper's objective of selecting as
    many pairs as possible: among maximum-cardinality matchings, the one
    with the largest total weight (smallest total cost) is returned.
    """
    if graph.number_of_edges() == 0:
        return []
    matching = nx.max_weight_matching(graph, maxcardinality=True, weight="weight")
    matched: List[EligiblePair] = []
    for endpoint_a, endpoint_b in matching:
        data = graph.get_edge_data(endpoint_a, endpoint_b)
        matched.append(data["eligible"])
    matched.sort(key=lambda item: (item.cost, item.pair))
    return matched


def matching_is_valid(pairs: Sequence[EligiblePair]) -> bool:
    """Check that no token appears in more than one selected pair."""
    seen: set = set()
    for item in pairs:
        if item.pair.first in seen or item.pair.second in seen:
            return False
        seen.add(item.pair.first)
        seen.add(item.pair.second)
    return True


def pairs_by_token(pairs: Sequence[EligiblePair]) -> Dict[str, TokenPair]:
    """Map each token participating in a matching to its pair."""
    index: Dict[str, TokenPair] = {}
    for item in pairs:
        index[item.pair.first] = item.pair
        index[item.pair.second] = item.pair
    return index


__all__ = [
    "choose_weight_offset",
    "build_pair_graph",
    "maximum_weight_matching",
    "matching_is_valid",
    "pairs_by_token",
]
