"""Multi-watermarking: successive watermarks on the same dataset.

Section VI motivates watermarking a dataset several times — legitimately,
to track provenance across a processing pipeline or to fingerprint each
buyer, or maliciously, as the re-watermarking attack of Section V-D. This
module supports the legitimate uses:

* :class:`MultiWatermarker` applies ``n`` successive watermarks (each with
  its own secret) and reports how the cumulative distortion evolves — the
  paper observes that 10 successive watermarks at ``b = 2`` cost only
  ~0.003 % similarity.
* :class:`ProvenanceChain` keeps the per-stage secrets in order and checks
  which prefix of the chain is still detectable in a suspected dataset,
  which also gives the chronological ordering needed to defeat a
  re-watermarking attack (the genuine owner's watermark is detectable in
  the attacker's version but not vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.batch import detect_many_secrets
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.similarity import similarity_percent
from repro.core.tokens import TokenValue
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, derive_rng


@dataclass(frozen=True)
class WatermarkRound:
    """One stage of a multi-watermarking run."""

    index: int
    result: WatermarkResult
    cumulative_similarity_percent: float


@dataclass
class MultiWatermarkResult:
    """Outcome of applying several successive watermarks.

    ``rounds[i]`` holds the i-th embedding and the similarity of the
    dataset *after* that embedding relative to the very first original.
    """

    original_histogram: TokenHistogram
    rounds: List[WatermarkRound] = field(default_factory=list)
    #: Shared cache of per-round detectors (one stage = one secret);
    #: unbounded because the working set is exactly the chain length.
    detector_cache: DetectorCache = field(
        default_factory=lambda: DetectorCache(capacity=None),
        repr=False,
        compare=False,
    )

    @property
    def final_histogram(self) -> TokenHistogram:
        """Histogram after the last embedding round."""
        if not self.rounds:
            return self.original_histogram
        return self.rounds[-1].result.watermarked_histogram

    @property
    def final_similarity_percent(self) -> float:
        """Similarity of the final version against the original."""
        return similarity_percent(
            self.original_histogram.as_dict(), self.final_histogram.as_dict()
        )

    @property
    def secrets(self) -> List[WatermarkSecret]:
        """Secrets of every round, oldest first."""
        return [watermark_round.result.secret for watermark_round in self.rounds]

    def detect_round(
        self,
        round_index: int,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        config: Optional[DetectionConfig] = None,
    ):
        """Run detection for the watermark embedded at ``round_index``.

        The per-round detector comes from the shared cache, so sweeping
        detection across rounds and dataset versions pays each round's
        moduli precomputation once.
        """
        secret = self.rounds[round_index].result.secret
        return self.detector_cache.get(secret, config).detect(data)


class MultiWatermarker:
    """Apply several successive FreqyWM watermarks to one dataset.

    Parameters
    ----------
    config:
        Generation configuration used by every round.
    protect_previous_rounds:
        When True, every round excludes the tokens already carrying an
        earlier round's watermark (via ``excluded_tokens``), so later
        embeddings never perturb earlier pairs. This keeps the whole
        provenance chain verifiable at the strict threshold ``t = 0`` and
        is the recommended setting for pipeline-stage tracking; with the
        default False the rounds are fully independent, matching the
        paper's Section VI experiment.
    """

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        *,
        protect_previous_rounds: bool = False,
        rng: RngLike = None,
    ) -> None:
        self.config = config or GenerationConfig()
        self.protect_previous_rounds = protect_previous_rounds
        self._rng_source = rng

    def watermark(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        rounds: int,
    ) -> MultiWatermarkResult:
        """Embed ``rounds`` successive watermarks, each with a fresh secret."""
        if rounds < 1:
            raise GenerationError("at least one watermarking round is required")
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        outcome = MultiWatermarkResult(original_histogram=histogram)
        current = histogram
        protected_tokens: List[str] = list(self.config.excluded_tokens)
        for index in range(rounds):
            round_rng = (
                derive_rng(self._rng_source, "multiwm", str(index))
                if self._rng_source is not None
                else None
            )
            round_config = self.config
            if self.protect_previous_rounds:
                from dataclasses import replace

                round_config = replace(
                    self.config, excluded_tokens=tuple(protected_tokens)
                )
            generator = WatermarkGenerator(round_config, rng=round_rng)
            result = generator.generate(current)
            result = WatermarkResult(
                original_histogram=result.original_histogram,
                watermarked_histogram=result.watermarked_histogram,
                watermarked_tokens=result.watermarked_tokens,
                secret=result.secret.with_metadata(round=index),
                selection=result.selection,
                adjustments=result.adjustments,
                eligible_pairs=result.eligible_pairs,
                timings=result.timings,
            )
            cumulative = similarity_percent(histogram.as_dict(), result.watermarked_histogram.as_dict())
            outcome.rounds.append(
                WatermarkRound(
                    index=index,
                    result=result,
                    cumulative_similarity_percent=cumulative,
                )
            )
            if self.protect_previous_rounds:
                for pair in result.secret.pairs:
                    protected_tokens.extend(pair.as_tuple())
            current = result.watermarked_histogram
        return outcome


@dataclass
class ProvenanceChain:
    """Chronologically ordered watermark secrets for one dataset lineage.

    The chain supports the paper's two multi-watermark use cases: tracking
    which processing stages a dataset version has passed through, and
    ordering competing ownership claims (the earlier watermark survives in
    every later version, while a later watermark is absent from earlier
    versions).
    """

    secrets: List[WatermarkSecret] = field(default_factory=list)
    #: Shared cache of per-stage detectors; unbounded because the
    #: working set is exactly the chain length (times threshold configs).
    detector_cache: DetectorCache = field(
        default_factory=lambda: DetectorCache(capacity=None),
        repr=False,
        compare=False,
    )

    def append(self, secret: WatermarkSecret) -> None:
        """Record a new watermarking stage at the end of the chain."""
        self.secrets.append(secret)

    def __len__(self) -> int:
        return len(self.secrets)

    def detectable_prefix(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        config: Optional[DetectionConfig] = None,
    ) -> int:
        """Length of the longest chain prefix whose watermarks all verify.

        A dataset produced after stage ``i`` carries the watermarks of all
        stages ``<= i`` (modulo later distortion), so the detectable prefix
        length identifies how far along the pipeline the version is.
        """
        detection_config = config or DetectionConfig(pair_threshold=1)
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        prefix = 0
        for secret in self.secrets:
            result = self.detector_cache.get(secret, detection_config).detect(histogram)
            if not result.accepted:
                break
            prefix += 1
        return prefix

    def detection_report(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        config: Optional[DetectionConfig] = None,
    ) -> List[Dict[str, object]]:
        """Per-stage detection summaries for a suspected dataset version.

        All stages are verified in **one** batched vectorized pass
        (:func:`repro.core.batch.detect_many_secrets`) — the dataset's
        frequencies are looked up once for the union of every stage's
        pair members; summaries are identical to per-stage detection.
        """
        detection_config = config or DetectionConfig(pair_threshold=1)
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        report: List[Dict[str, object]] = []
        for index, result in enumerate(
            detect_many_secrets(histogram, self.secrets, detection_config)
        ):
            entry = result.summary()
            entry["round"] = index
            report.append(entry)
        return report


__all__ = [
    "WatermarkRound",
    "MultiWatermarkResult",
    "MultiWatermarker",
    "ProvenanceChain",
]
