"""Watermark detection — Algorithm II (``WM_Detect``).

Given a suspected dataset ``D'_w``, the owner's secret list ``L_sc`` and
two thresholds (``t``: per-pair tolerance, ``k``: minimum accepted pairs),
detection

1. builds the histogram of the suspected dataset (frequencies only — no
   boundaries are needed),
2. recomputes ``s_ij`` for every stored pair whose two tokens are present,
3. accepts a pair when ``(f_i - f_j) mod s_ij <= t``,
4. declares the dataset watermarked when at least ``k`` pairs verified.

Detection is linear in the number of stored pairs, which is the paper's
"verification in linear time" claim; it never needs the original dataset
(the scheme is blind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import DetectionConfig
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenPair, TokenValue
from repro.exceptions import DetectionError


@dataclass(frozen=True)
class PairEvidence:
    """Per-pair detection outcome.

    ``present`` is False when either token of the pair is missing from the
    suspected dataset (the pair then automatically fails); ``remainder``
    is the observed ``(f_i - f_j) mod s_ij`` for present pairs.
    """

    pair: TokenPair
    present: bool
    modulus: int
    remainder: Optional[int]
    threshold: int
    accepted: bool


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one watermark detection run.

    ``accepted`` is the boolean verdict; the remaining fields expose the
    evidence needed by the evaluation (accepted-pair rates, per-pair
    remainders) and by the dispute protocol.
    """

    accepted: bool
    accepted_pairs: int
    required_pairs: int
    total_pairs: int
    evidence: Tuple[PairEvidence, ...]

    @property
    def accepted_fraction(self) -> float:
        """Fraction of stored pairs that verified (0 when none stored)."""
        if self.total_pairs == 0:
            return 0.0
        return self.accepted_pairs / self.total_pairs

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        return {
            "accepted": self.accepted,
            "accepted_pairs": self.accepted_pairs,
            "required_pairs": self.required_pairs,
            "total_pairs": self.total_pairs,
            "accepted_fraction": self.accepted_fraction,
        }


class WatermarkDetector:
    """Reusable ``WM_Detect`` engine for one secret list.

    Parameters
    ----------
    secret:
        The owner's secret list ``L_sc`` produced at generation time.
    config:
        Detection thresholds; defaults to the strict setting ``t = 0`` and
        ``k = 50%`` of the stored pairs.
    """

    def __init__(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
    ) -> None:
        if len(secret.pairs) == 0:
            raise DetectionError("the secret list contains no watermarked pairs")
        self.secret = secret
        self.config = config or DetectionConfig()

    def detect(
        self, data: Union[Sequence[TokenValue], TokenHistogram]
    ) -> DetectionResult:
        """Run detection against a suspected dataset or its histogram."""
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        evidence: List[PairEvidence] = []
        accepted_pairs = 0
        for pair in self.secret.pairs:
            modulus = pair_modulus(
                pair.first, pair.second, self.secret.secret, self.secret.modulus_cap
            )
            threshold = self.config.threshold_for(modulus)
            present = pair.first in histogram and pair.second in histogram
            if not present:
                evidence.append(
                    PairEvidence(
                        pair=pair,
                        present=False,
                        modulus=modulus,
                        remainder=None,
                        threshold=threshold,
                        accepted=False,
                    )
                )
                continue
            if modulus < 2:
                # A modulus of 0 or 1 carries no information (the generation
                # algorithm never selects such pairs); treat the pair as
                # unverifiable so forged secrets cannot exploit it.
                evidence.append(
                    PairEvidence(
                        pair=pair,
                        present=True,
                        modulus=modulus,
                        remainder=None,
                        threshold=threshold,
                        accepted=False,
                    )
                )
                continue
            difference = histogram.frequency(pair.first) - histogram.frequency(pair.second)
            remainder = difference % modulus
            if self.config.symmetric_tolerance:
                accepted = min(remainder, modulus - remainder) <= threshold
            else:
                accepted = remainder <= threshold
            if accepted:
                accepted_pairs += 1
            evidence.append(
                PairEvidence(
                    pair=pair,
                    present=True,
                    modulus=modulus,
                    remainder=remainder,
                    threshold=threshold,
                    accepted=accepted,
                )
            )
        required = self.config.required_pairs(len(self.secret.pairs))
        return DetectionResult(
            accepted=accepted_pairs >= required,
            accepted_pairs=accepted_pairs,
            required_pairs=required,
            total_pairs=len(self.secret.pairs),
            evidence=tuple(evidence),
        )


def detect_watermark(
    data: Union[Sequence[TokenValue], TokenHistogram],
    secret: WatermarkSecret,
    *,
    pair_threshold: int = 0,
    min_accepted_pairs: Optional[int] = None,
    min_accepted_fraction: float = 0.5,
    pair_threshold_fraction: Optional[float] = None,
) -> DetectionResult:
    """Functional one-shot wrapper mirroring ``WM_Detect(D'_w, L_sc, k, t)``."""
    config = DetectionConfig(
        pair_threshold=pair_threshold,
        pair_threshold_fraction=pair_threshold_fraction,
        min_accepted_pairs=min_accepted_pairs,
        min_accepted_fraction=min_accepted_fraction,
    )
    return WatermarkDetector(secret, config).detect(data)


__all__ = [
    "PairEvidence",
    "DetectionResult",
    "WatermarkDetector",
    "detect_watermark",
]
