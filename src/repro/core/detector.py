"""Watermark detection — Algorithm II (``WM_Detect``).

Given a suspected dataset ``D'_w``, the owner's secret list ``L_sc`` and
two thresholds (``t``: per-pair tolerance, ``k``: minimum accepted pairs),
detection

1. builds the histogram of the suspected dataset (frequencies only — no
   boundaries are needed),
2. recomputes ``s_ij`` for every stored pair whose two tokens are present,
3. accepts a pair when ``(f_i - f_j) mod s_ij <= t``,
4. declares the dataset watermarked when at least ``k`` pairs verified.

Detection is linear in the number of stored pairs, which is the paper's
"verification in linear time" claim; it never needs the original dataset
(the scheme is blind).

The detector caches the recomputed moduli and resolved thresholds at
construction (they depend only on the secret and the configuration), so
scanning many suspected datasets with one detector pays the SHA-256 cost
once; each :meth:`WatermarkDetector.detect` call is then a single
vectorized ``(f_i - f_j) mod s_ij <= t`` pass over NumPy arrays.
:meth:`WatermarkDetector.detect_many` extends the same pass to a whole
batch of suspected datasets at once (one matrix operation), which is what
the marketplace-scale sweeps and :func:`repro.core.batch.detect_many` use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.arrays import frequency_matrix
from repro.core.backend import ArrayBackend, BackendLike, resolve_backend
from repro.core.config import DetectionConfig
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenPair, TokenValue
from repro.exceptions import DetectionError

#: A suspected dataset: a raw token sequence or a pre-built histogram.
SuspectData = Union[Sequence[TokenValue], TokenHistogram]


def detector_fingerprint(
    secret: WatermarkSecret,
    config: Optional[DetectionConfig] = None,
    backend: BackendLike = None,
) -> str:
    """Cache key of the detector a ``(secret, config, backend)`` triple builds.

    Equal fingerprints guarantee identical moduli, thresholds and
    required-pair counts — i.e. a detector built from one input can
    serve requests for the other verbatim. The secret half is the keyed
    commitment from :meth:`~repro.core.secrets.WatermarkSecret.fingerprint`,
    so the key reveals nothing about the pairs; the config half is the
    plain-text knob listing from
    :meth:`~repro.core.config.DetectionConfig.fingerprint`. The trailing
    ``xp=`` component names the compute backend the detector runs on, so
    caches keyed by fingerprint (:class:`repro.core.cache.DetectorCache`)
    never hand a GPU-resident detector to a CPU caller or vice versa.
    """
    resolved = resolve_backend(backend)
    return (
        f"{secret.fingerprint()}|{(config or DetectionConfig()).fingerprint()}"
        f"|xp={resolved.name}"
    )


def verify_pair_arrays(
    first: np.ndarray,
    second: np.ndarray,
    *,
    safe_moduli: np.ndarray,
    valid: np.ndarray,
    thresholds: np.ndarray,
    symmetric_tolerance: bool,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The vectorized ``(f_i - f_j) mod s_ij <= t`` acceptance rule.

    This is the single entry point for the paper's pair-verification
    arithmetic, shared by :class:`WatermarkDetector` (one secret, one or
    many datasets) and :func:`repro.core.batch.detect_many_secrets`
    (many secrets, one dataset) so the two paths cannot diverge. The
    arithmetic itself lives in
    :meth:`repro.core.backend.ArrayBackend.stacked_modulo` and runs on the
    resolved compute backend.

    ``first``/``second`` hold the pair-member frequencies (0 marks a
    missing token), broadcastable against the per-pair ``safe_moduli`` /
    ``valid`` / ``thresholds`` arrays. Returns ``(accepted, present,
    remainder)`` host arrays of the broadcast shape.
    """
    return resolve_backend(backend).stacked_modulo(
        first,
        second,
        safe_moduli=safe_moduli,
        valid=valid,
        thresholds=thresholds,
        symmetric_tolerance=symmetric_tolerance,
    )


def build_pair_evidence(
    pairs: Sequence["TokenPair"],
    accepted: np.ndarray,
    present: np.ndarray,
    remainder: np.ndarray,
    moduli: np.ndarray,
    thresholds: np.ndarray,
    valid: np.ndarray,
) -> Tuple["PairEvidence", ...]:
    """Materialise per-pair evidence objects from one vector pass."""
    return tuple(
        PairEvidence(
            pair=pair,
            present=bool(present[index]),
            modulus=int(moduli[index]),
            remainder=(
                int(remainder[index]) if present[index] and valid[index] else None
            ),
            threshold=int(thresholds[index]),
            accepted=bool(accepted[index]),
        )
        for index, pair in enumerate(pairs)
    )


@dataclass(frozen=True)
class PairEvidence:
    """Per-pair detection outcome.

    ``present`` is False when either token of the pair is missing from the
    suspected dataset (the pair then automatically fails); ``remainder``
    is the observed ``(f_i - f_j) mod s_ij`` for present pairs.
    """

    pair: TokenPair
    present: bool
    modulus: int
    remainder: Optional[int]
    threshold: int
    accepted: bool


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one watermark detection run.

    ``accepted`` is the boolean verdict; the remaining fields expose the
    evidence needed by the evaluation (accepted-pair rates, per-pair
    remainders) and by the dispute protocol. Batch detection runs skip
    the per-pair evidence objects for speed (``evidence`` is then empty).
    """

    accepted: bool
    accepted_pairs: int
    required_pairs: int
    total_pairs: int
    evidence: Tuple[PairEvidence, ...]

    @property
    def accepted_fraction(self) -> float:
        """Fraction of stored pairs that verified (0 when none stored)."""
        if self.total_pairs == 0:
            return 0.0
        return self.accepted_pairs / self.total_pairs

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI and benchmarks."""
        return {
            "accepted": self.accepted,
            "accepted_pairs": self.accepted_pairs,
            "required_pairs": self.required_pairs,
            "total_pairs": self.total_pairs,
            "accepted_fraction": self.accepted_fraction,
        }


class WatermarkDetector:
    """Reusable ``WM_Detect`` engine for one secret list.

    Parameters
    ----------
    secret:
        The owner's secret list ``L_sc`` produced at generation time.
    config:
        Detection thresholds; defaults to the strict setting ``t = 0`` and
        ``k = 50%`` of the stored pairs.
    backend:
        Compute backend (name, instance or ``None`` for the
        ``FREQYWM_BACKEND`` / NumPy default). The per-pair operand arrays
        are moved to the backend's device once, at construction, and every
        ``detect`` call dispatches through its fused kernels.
    """

    def __init__(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
        *,
        backend: BackendLike = None,
    ) -> None:
        if len(secret.pairs) == 0:
            raise DetectionError("the secret list contains no watermarked pairs")
        self.secret = secret
        self.config = config or DetectionConfig()
        self.backend: ArrayBackend = resolve_backend(backend)
        # The moduli depend only on the secret, the thresholds only on the
        # moduli and the configuration: compute both once per detector so
        # repeated detect calls skip all SHA-256 work.
        self._moduli = np.fromiter(
            (
                pair_modulus(pair.first, pair.second, secret.secret, secret.modulus_cap)
                for pair in secret.pairs
            ),
            dtype=np.int64,
            count=len(secret.pairs),
        )
        self._thresholds = np.fromiter(
            (self.config.threshold_for(int(modulus)) for modulus in self._moduli),
            dtype=np.int64,
            count=len(secret.pairs),
        )
        # A modulus of 0 or 1 carries no information (the generation
        # algorithm never selects such pairs); treat the pair as
        # unverifiable so forged secrets cannot exploit it.
        self._valid = self._moduli >= 2
        self._safe_moduli = np.where(self._valid, self._moduli, 1)
        self._first_tokens = [pair.first for pair in secret.pairs]
        self._second_tokens = [pair.second for pair in secret.pairs]
        self._required = self.config.required_pairs(len(secret.pairs))
        self._fingerprint: Optional[str] = None
        # Long-lived verification operands live on the backend's device;
        # uploaded once here, reused by every detect/detect_many call.
        # (The NumPy backend's transfers are the identity, so the default
        # path keeps its zero-copy behaviour.)
        self._safe_moduli_device = self.backend.from_host(self._safe_moduli)
        self._valid_device = self.backend.from_host(self._valid)
        self._thresholds_device = self.backend.from_host(self._thresholds)

    @property
    def fingerprint(self) -> str:
        """Cache key of this detector (see :func:`detector_fingerprint`).

        Computed lazily and memoised: the service-layer caches hash a
        detector once, not per request.
        """
        if self._fingerprint is None:
            self._fingerprint = detector_fingerprint(
                self.secret, self.config, self.backend
            )
        return self._fingerprint

    def reconfigured(self, config: Optional[DetectionConfig] = None) -> "WatermarkDetector":
        """A detector for the same secret under different thresholds.

        The per-pair moduli depend only on the secret, so the clone
        reuses this detector's precomputed modulus arrays and re-resolves
        just the thresholds and the required pair count — no SHA-256
        re-derivation. Threshold sweeps (one detector per ``t``) pay the
        moduli once instead of once per sweep point; verdicts are
        identical to constructing ``WatermarkDetector(secret, config)``
        from scratch.
        """
        clone = object.__new__(WatermarkDetector)
        clone.secret = self.secret
        clone.config = config or DetectionConfig()
        clone.backend = self.backend
        clone._moduli = self._moduli
        clone._thresholds = np.fromiter(
            (clone.config.threshold_for(int(modulus)) for modulus in self._moduli),
            dtype=np.int64,
            count=len(self.secret.pairs),
        )
        clone._valid = self._valid
        clone._safe_moduli = self._safe_moduli
        clone._first_tokens = self._first_tokens
        clone._second_tokens = self._second_tokens
        clone._required = clone.config.required_pairs(len(self.secret.pairs))
        clone._fingerprint = None
        # Only the thresholds changed; the modulus-derived device buffers
        # are shared with this detector.
        clone._safe_moduli_device = self._safe_moduli_device
        clone._valid_device = self._valid_device
        clone._thresholds_device = clone.backend.from_host(clone._thresholds)
        return clone

    def pair_components(self) -> Tuple[List[str], List[str], np.ndarray, np.ndarray]:
        """The precomputed per-pair verification inputs of this detector.

        Returns ``(first_tokens, second_tokens, moduli, thresholds)`` in
        stored-pair order. Stacked many-secrets passes
        (:func:`repro.core.batch.detect_many_secrets`) concatenate these
        across cached detectors instead of re-deriving the SHA-256 moduli
        per call. The arrays are the detector's own working state — treat
        them as read-only.
        """
        return self._first_tokens, self._second_tokens, self._moduli, self._thresholds

    # ------------------------------------------------------------------ #
    # Vectorized verification core
    # ------------------------------------------------------------------ #

    def _verify(
        self, first: np.ndarray, second: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One vectorized ``(f_i - f_j) mod s_ij <= t`` pass.

        ``first``/``second`` hold the pair-member frequencies (0 marks a
        missing token) for one dataset (1-D) or a batch (2-D, one row per
        dataset). Returns ``(accepted, present, remainder)`` host arrays
        of the same shape. Dispatches to the detector's compute backend
        with the device-resident operands uploaded at construction.
        """
        return self.backend.stacked_modulo(
            first,
            second,
            safe_moduli=self._safe_moduli_device,
            valid=self._valid_device,
            thresholds=self._thresholds_device,
            symmetric_tolerance=self.config.symmetric_tolerance,
        )

    def _result(self, accepted_pairs: int, evidence: Tuple[PairEvidence, ...]) -> DetectionResult:
        return DetectionResult(
            accepted=accepted_pairs >= self._required,
            accepted_pairs=accepted_pairs,
            required_pairs=self._required,
            total_pairs=len(self.secret.pairs),
            evidence=evidence,
        )

    def _evidence(
        self, accepted: np.ndarray, present: np.ndarray, remainder: np.ndarray
    ) -> Tuple[PairEvidence, ...]:
        """Materialise per-pair evidence objects from the vector pass."""
        return build_pair_evidence(
            self.secret.pairs,
            accepted,
            present,
            remainder,
            self._moduli,
            self._thresholds,
            self._valid,
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def detect(
        self, data: SuspectData, *, collect_evidence: bool = True
    ) -> DetectionResult:
        """Run detection against a suspected dataset or its histogram.

        Parameters
        ----------
        data : SuspectData
            A raw token sequence or a pre-built
            :class:`~repro.core.histogram.TokenHistogram`.
        collect_evidence : bool, optional
            When False, skips building the per-pair
            :class:`PairEvidence` objects (the verdict and counts are
            unaffected), which large sweeps use to stay allocation-free.

        Returns
        -------
        DetectionResult
            The verdict with accepted/required/total pair counts.
        """
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        arrays = histogram.arrays()
        first = arrays.frequencies(self._first_tokens)
        second = arrays.frequencies(self._second_tokens)
        accepted, present, remainder = self._verify(first, second)
        evidence: Tuple[PairEvidence, ...] = ()
        if collect_evidence:
            evidence = self._evidence(accepted, present, remainder)
        return self._result(int(accepted.sum()), evidence)

    def detect_many(
        self,
        datasets: Sequence[SuspectData],
        *,
        collect_evidence: bool = False,
    ) -> List[DetectionResult]:
        """Batch detection: verify every stored pair on every dataset.

        The pair frequencies of all datasets are stacked into one matrix
        and verified with a single vectorized modulo pass — the per-pair
        Python loop of the seed implementation disappears entirely, and
        the moduli hashes are shared across the whole batch.

        Parameters
        ----------
        datasets : Sequence[SuspectData]
            Suspected datasets (raw token sequences and/or pre-built
            histograms, mixed freely).
        collect_evidence : bool, optional
            When True, per-pair :class:`PairEvidence` is materialised
            for every dataset.

        Returns
        -------
        List[DetectionResult]
            One result per dataset, in input order. To shard this call
            across processes, see
            :class:`repro.core.sharding.ShardedDetectionPool`.
        """
        if not datasets:
            return []
        histograms = [
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
            for data in datasets
        ]
        tokens: List[str] = []
        positions: Dict[str, int] = {}
        for token in self._first_tokens + self._second_tokens:
            if token not in positions:
                positions[token] = len(tokens)
                tokens.append(token)
        matrix = frequency_matrix([histogram.arrays() for histogram in histograms], tokens)
        first_columns = np.fromiter(
            (positions[token] for token in self._first_tokens), dtype=np.intp
        )
        second_columns = np.fromiter(
            (positions[token] for token in self._second_tokens), dtype=np.intp
        )
        accepted, present, remainder = self._verify(
            matrix[:, first_columns], matrix[:, second_columns]
        )
        accepted_counts = accepted.sum(axis=1)
        results: List[DetectionResult] = []
        for row in range(len(histograms)):
            evidence: Tuple[PairEvidence, ...] = ()
            if collect_evidence:
                evidence = self._evidence(accepted[row], present[row], remainder[row])
            results.append(self._result(int(accepted_counts[row]), evidence))
        return results


def detect_watermark(
    data: SuspectData,
    secret: WatermarkSecret,
    *,
    pair_threshold: int = 0,
    min_accepted_pairs: Optional[int] = None,
    min_accepted_fraction: float = 0.5,
    pair_threshold_fraction: Optional[float] = None,
) -> DetectionResult:
    """Functional one-shot wrapper mirroring ``WM_Detect(D'_w, L_sc, k, t)``."""
    config = DetectionConfig(
        pair_threshold=pair_threshold,
        pair_threshold_fraction=pair_threshold_fraction,
        min_accepted_pairs=min_accepted_pairs,
        min_accepted_fraction=min_accepted_fraction,
    )
    return WatermarkDetector(secret, config).detect(data)


__all__ = [
    "PairEvidence",
    "DetectionResult",
    "SuspectData",
    "WatermarkDetector",
    "build_pair_evidence",
    "detect_watermark",
    "detector_fingerprint",
    "verify_pair_arrays",
]
