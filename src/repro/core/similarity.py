"""Similarity and distance metrics between token frequency histograms.

The paper's *similarity constraint* requires the watermarked histogram to
stay within a budget ``b`` of the original: ``sim(D_o, D_w) >= (100 - b)%``.
Cosine similarity is what the paper's experiments use, but Section III
notes that "any similarity metric can be deployed without any loss of
security"; this module therefore exposes a small registry of metrics that
the generator, the baselines and the distortion analysis all share.

All metrics operate on *aligned* frequency vectors: callers pass two
mappings from token to count and the metric aligns them over the union of
keys (missing tokens count as zero), so histograms with different supports
compare correctly.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.exceptions import HistogramError

FrequencyMap = Mapping[str, int]
MetricFunction = Callable[[np.ndarray, np.ndarray], float]


def align_frequencies(
    original: FrequencyMap, other: FrequencyMap
) -> Tuple[np.ndarray, np.ndarray]:
    """Align two token->count mappings over the union of their tokens.

    Returns two equally sized float vectors in a deterministic (sorted)
    token order, with zeros for tokens absent from one of the histograms.
    """
    tokens = sorted(set(original) | set(other))
    left = np.array([original.get(token, 0) for token in tokens], dtype=float)
    right = np.array([other.get(token, 0) for token in tokens], dtype=float)
    return left, right


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity in ``[0, 1]`` between two count vectors.

    Two all-zero vectors are defined as identical (similarity 1.0); a zero
    vector against a non-zero vector has similarity 0.0.
    """
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 and right_norm == 0.0:
        return 1.0
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    value = float(np.dot(left, right) / (left_norm * right_norm))
    # Guard against floating point drift slightly above 1.
    return min(max(value, 0.0), 1.0)


def l1_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Similarity derived from the normalised L1 (total variation) distance."""
    total = float(np.sum(left) + np.sum(right))
    if total == 0.0:
        return 1.0
    distance = float(np.sum(np.abs(left - right))) / total
    return 1.0 - distance


def l2_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Similarity derived from the normalised Euclidean distance."""
    denominator = float(np.linalg.norm(left) + np.linalg.norm(right))
    if denominator == 0.0:
        return 1.0
    return 1.0 - float(np.linalg.norm(left - right)) / denominator


def jaccard_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Weighted Jaccard similarity ``sum(min) / sum(max)`` of the counts."""
    maxima = np.maximum(left, right)
    total_max = float(np.sum(maxima))
    if total_max == 0.0:
        return 1.0
    return float(np.sum(np.minimum(left, right)) / total_max)


def kl_divergence(left: np.ndarray, right: np.ndarray) -> float:
    """Kullback-Leibler divergence ``KL(P_left || P_right)`` in nats.

    Counts are normalised into probability distributions; a small epsilon
    smooths zero bins on the right-hand side so the divergence stays
    finite for histograms with disjoint support.
    """
    epsilon = 1e-12
    p = left / max(float(np.sum(left)), epsilon)
    q = right / max(float(np.sum(right)), epsilon)
    q = np.clip(q, epsilon, None)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


_METRICS: Dict[str, MetricFunction] = {
    "cosine": cosine_similarity,
    "l1": l1_similarity,
    "l2": l2_similarity,
    "jaccard": jaccard_similarity,
}


def available_metrics() -> Tuple[str, ...]:
    """Names of the registered similarity metrics."""
    return tuple(sorted(_METRICS))


def get_metric(name: str) -> MetricFunction:
    """Look up a similarity metric by name (case-insensitive)."""
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown similarity metric {name!r}; available: {available_metrics()}"
        ) from None


def register_metric(name: str, function: MetricFunction) -> None:
    """Register a custom similarity metric under ``name``.

    The function must map two aligned count vectors to a similarity in
    ``[0, 1]`` where 1 means identical.
    """
    _METRICS[name.lower()] = function


def histogram_similarity(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Similarity between two token->count mappings under ``metric``."""
    left, right = align_frequencies(original, other)
    return get_metric(metric)(left, right)


def similarity_percent(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Similarity expressed as a percentage in ``[0, 100]``."""
    return 100.0 * histogram_similarity(original, other, metric=metric)


def distortion_percent(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Distortion = ``100 - similarity_percent`` — the quantity bounded by ``b``."""
    return 100.0 - similarity_percent(original, other, metric=metric)


#: Built-in metric implementations the tracker can update incrementally
#: with exact integer aggregates. A metric name qualifies only while the
#: registry still maps it to the built-in function — a custom metric
#: registered under a built-in name (``register_metric("cosine", ...)``)
#: must fall back to the full recompute of the *registered* function.
_INCREMENTAL_IMPLEMENTATIONS: Dict[str, MetricFunction] = {
    "cosine": cosine_similarity,
    "l1": l1_similarity,
    "l2": l2_similarity,
    "jaccard": jaccard_similarity,
}


class SimilarityTracker:
    """Incrementally-updated similarity against a fixed original histogram.

    The budget knapsack evaluates the similarity constraint once per
    candidate pair. Recomputing the metric from scratch costs a full
    union-alignment over all ``n`` tokens — O(n·m) across ``m``
    candidates, the seed implementation's bottleneck. This tracker keeps
    the scalar aggregates every built-in metric is made of (dot product,
    squared norms, element sums, absolute/squared difference sums and
    min/max overlaps) as exact Python integers, so applying or previewing
    a pair adjustment is an O(1) delta update per touched token instead of
    a recompute:

    * ``dot  += o_t * d``            (cosine numerator)
    * ``|c|² += 2 c_t d + d²``       (cosine/l2 denominator)
    * ``Σ|c-o|``, ``Σ(c-o)²``, ``Σmin``, ``Σmax`` likewise from the
      before/after values of the touched token only.

    Because the aggregates are exact integers the evaluation order cannot
    introduce floating-point drift: the similarity reported after any
    sequence of updates equals the one a full recompute would give (up to
    one final float division).

    Parameters
    ----------
    original:
        The original histogram as a token->count mapping, or any object
        with an ``as_dict()`` method (e.g. ``TokenHistogram``).
    metric:
        Similarity metric name. The four built-ins update incrementally;
        custom registered metrics are supported through a full-recompute
        fallback so behaviour stays correct, just not O(1).
    """

    __slots__ = (
        "metric",
        "_original",
        "_current",
        "_metric_function",
        "_exact",
        "_norm2_original",
        "_norm2_current",
        "_dot",
        "_sum_original",
        "_sum_current",
        "_abs_diff",
        "_sq_diff",
        "_min_sum",
        "_max_sum",
    )

    def __init__(self, original, *, metric: str = "cosine") -> None:
        if hasattr(original, "as_dict"):
            original = original.as_dict()
        self.metric = metric.lower()
        self._metric_function = get_metric(self.metric)
        self._exact = (
            _INCREMENTAL_IMPLEMENTATIONS.get(self.metric) is self._metric_function
        )
        self._original: Dict[str, int] = {
            token: int(count) for token, count in original.items()
        }
        self._current: Dict[str, int] = dict(self._original)
        counts = self._original.values()
        self._norm2_original = sum(count * count for count in counts)
        self._norm2_current = self._norm2_original
        self._dot = self._norm2_original
        self._sum_original = sum(counts)
        self._sum_current = self._sum_original
        self._abs_diff = 0
        self._sq_diff = 0
        self._min_sum = self._sum_original
        self._max_sum = self._sum_original

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #

    def current_count(self, token: str) -> int:
        """Current (adjusted) count of one token.

        Parameters
        ----------
        token : str
            Canonical token string.

        Returns
        -------
        int
            The count after every applied adjustment; ``0`` if the token
            never appeared.
        """
        return self._current.get(token, 0)

    def current_counts(self) -> Dict[str, int]:
        """Copy of the current token->count state (zero counts dropped)."""
        return {token: count for token, count in self._current.items() if count > 0}

    def similarity(self) -> float:
        """Similarity of the current state versus the original, in ``[0, 1]``."""
        if not self._exact:
            return self._metric_function(
                *align_frequencies(self._original, self._current)
            )
        return self._evaluate(
            self._norm2_current,
            self._dot,
            self._sum_current,
            self._abs_diff,
            self._sq_diff,
            self._min_sum,
            self._max_sum,
        )

    def similarity_percent(self) -> float:
        """Similarity of the current state as a percentage in ``[0, 100]``."""
        return 100.0 * self.similarity()

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def peek(self, deltas: Mapping[str, int]) -> float:
        """Similarity if ``deltas`` were applied, without applying them.

        Parameters
        ----------
        deltas : Mapping[str, int]
            Token -> signed count change of one candidate adjustment.

        Returns
        -------
        float
            The similarity the tracker would report after ``apply(deltas)``,
            in ``[0, 1]``. O(1) per touched token for built-in metrics.

        Raises
        ------
        HistogramError
            If any delta would drive a token count negative.
        """
        if not self._exact:
            trial = dict(self._current)
            for token, delta in deltas.items():
                value = trial.get(token, 0) + delta
                self._require_non_negative(token, value, delta)
                trial[token] = value
            return self._metric_function(*align_frequencies(self._original, trial))
        return self._evaluate(*self._shifted(deltas))

    def peek_percent(self, deltas: Mapping[str, int]) -> float:
        """:meth:`peek` as a percentage in ``[0, 100]``."""
        return 100.0 * self.peek(deltas)

    def apply(self, deltas: Mapping[str, int]) -> float:
        """Apply ``deltas`` to the current state; return the new similarity.

        Atomic: a negative-count violation anywhere in ``deltas`` raises
        before any state is mutated.

        Parameters
        ----------
        deltas : Mapping[str, int]
            Token -> signed count change to commit.

        Returns
        -------
        float
            The similarity of the updated state, in ``[0, 1]``.

        Raises
        ------
        HistogramError
            If any delta would drive a token count negative (state is
            left untouched).
        """
        if self._exact:
            (
                self._norm2_current,
                self._dot,
                self._sum_current,
                self._abs_diff,
                self._sq_diff,
                self._min_sum,
                self._max_sum,
            ) = self._shifted(deltas)
        else:
            for token, delta in deltas.items():
                self._require_non_negative(
                    token, self._current.get(token, 0) + delta, delta
                )
        for token, delta in deltas.items():
            self._current[token] = self._current.get(token, 0) + delta
        return self.similarity()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _require_non_negative(token: str, value: int, delta: int) -> None:
        if value < 0:
            raise HistogramError(
                f"update would make frequency of {token!r} negative"
                f" ({value - delta} {delta:+d})"
            )

    def _shifted(self, deltas: Mapping[str, int]):
        """Aggregates after ``deltas``, computed without mutating state."""
        norm2 = self._norm2_current
        dot = self._dot
        total = self._sum_current
        abs_diff = self._abs_diff
        sq_diff = self._sq_diff
        min_sum = self._min_sum
        max_sum = self._max_sum
        for token, delta in deltas.items():
            if delta == 0:
                continue
            before = self._current.get(token, 0)
            after = before + delta
            self._require_non_negative(token, after, delta)
            original = self._original.get(token, 0)
            norm2 += delta * (before + after)
            dot += original * delta
            total += delta
            abs_diff += abs(after - original) - abs(before - original)
            sq_diff += (after - original) ** 2 - (before - original) ** 2
            min_sum += min(after, original) - min(before, original)
            max_sum += max(after, original) - max(before, original)
        return norm2, dot, total, abs_diff, sq_diff, min_sum, max_sum

    def _evaluate(
        self,
        norm2_current: int,
        dot: int,
        sum_current: int,
        abs_diff: int,
        sq_diff: int,
        min_sum: int,
        max_sum: int,
    ) -> float:
        """Evaluate the tracked metric from exact integer aggregates."""
        if abs_diff == 0:
            # Identical vectors: every metric is exactly 1 (this also
            # covers the degenerate all-zero versus all-zero case).
            return 1.0
        if self.metric == "cosine":
            if self._norm2_original == 0 or norm2_current == 0:
                return 0.0
            value = dot / math.sqrt(self._norm2_original * norm2_current)
            return min(max(value, 0.0), 1.0)
        if self.metric == "l1":
            total = self._sum_original + sum_current
            if total == 0:
                return 1.0
            return 1.0 - abs_diff / total
        if self.metric == "l2":
            denominator = math.sqrt(self._norm2_original) + math.sqrt(norm2_current)
            if denominator == 0.0:
                return 1.0
            return 1.0 - math.sqrt(sq_diff) / denominator
        # jaccard
        if max_sum == 0:
            return 1.0
        return min_sum / max_sum


def ranking(frequencies: FrequencyMap) -> Tuple[str, ...]:
    """Tokens ordered by descending frequency with deterministic tie-break."""
    return tuple(
        token
        for token, _count in sorted(
            frequencies.items(), key=lambda item: (-item[1], item[0])
        )
    )


def rank_changes(original: FrequencyMap, other: FrequencyMap) -> int:
    """Number of tokens whose rank position differs between two histograms.

    This is the metric behind the paper's claim that WM-OBT and WM-RVS
    change the ranking of 998 and 987 out of 1000 tokens while FreqyWM
    changes none. Tokens appearing in only one histogram count as changed.
    """
    original_rank = {token: index for index, token in enumerate(ranking(original))}
    other_rank = {token: index for index, token in enumerate(ranking(other))}
    tokens = set(original_rank) | set(other_rank)
    changed = 0
    for token in tokens:
        if original_rank.get(token) != other_rank.get(token):
            changed += 1
    return changed


def ranking_preserved(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    strict: bool = False,
) -> bool:
    """Whether the descending-frequency ranking is preserved.

    With ``strict=False`` (the default, matching the paper's constraint)
    the order of the original ranking must remain *non-increasing* in the
    new histogram — ties introduced by the watermark are allowed because
    they do not invert any pair of tokens. With ``strict=True`` the exact
    rank permutation must be identical.
    """
    if strict:
        return rank_changes(original, other) == 0
    order = ranking(original)
    counts = [other.get(token, 0) for token in order]
    return all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))


__all__ = [
    "FrequencyMap",
    "MetricFunction",
    "align_frequencies",
    "cosine_similarity",
    "l1_similarity",
    "l2_similarity",
    "jaccard_similarity",
    "kl_divergence",
    "available_metrics",
    "get_metric",
    "register_metric",
    "histogram_similarity",
    "SimilarityTracker",
    "similarity_percent",
    "distortion_percent",
    "ranking",
    "rank_changes",
    "ranking_preserved",
]
