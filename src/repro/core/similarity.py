"""Similarity and distance metrics between token frequency histograms.

The paper's *similarity constraint* requires the watermarked histogram to
stay within a budget ``b`` of the original: ``sim(D_o, D_w) >= (100 - b)%``.
Cosine similarity is what the paper's experiments use, but Section III
notes that "any similarity metric can be deployed without any loss of
security"; this module therefore exposes a small registry of metrics that
the generator, the baselines and the distortion analysis all share.

All metrics operate on *aligned* frequency vectors: callers pass two
mappings from token to count and the metric aligns them over the union of
keys (missing tokens count as zero), so histograms with different supports
compare correctly.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Tuple

import numpy as np

FrequencyMap = Mapping[str, int]
MetricFunction = Callable[[np.ndarray, np.ndarray], float]


def align_frequencies(
    original: FrequencyMap, other: FrequencyMap
) -> Tuple[np.ndarray, np.ndarray]:
    """Align two token->count mappings over the union of their tokens.

    Returns two equally sized float vectors in a deterministic (sorted)
    token order, with zeros for tokens absent from one of the histograms.
    """
    tokens = sorted(set(original) | set(other))
    left = np.array([original.get(token, 0) for token in tokens], dtype=float)
    right = np.array([other.get(token, 0) for token in tokens], dtype=float)
    return left, right


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity in ``[0, 1]`` between two count vectors.

    Two all-zero vectors are defined as identical (similarity 1.0); a zero
    vector against a non-zero vector has similarity 0.0.
    """
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 and right_norm == 0.0:
        return 1.0
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    value = float(np.dot(left, right) / (left_norm * right_norm))
    # Guard against floating point drift slightly above 1.
    return min(max(value, 0.0), 1.0)


def l1_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Similarity derived from the normalised L1 (total variation) distance."""
    total = float(np.sum(left) + np.sum(right))
    if total == 0.0:
        return 1.0
    distance = float(np.sum(np.abs(left - right))) / total
    return 1.0 - distance


def l2_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Similarity derived from the normalised Euclidean distance."""
    denominator = float(np.linalg.norm(left) + np.linalg.norm(right))
    if denominator == 0.0:
        return 1.0
    return 1.0 - float(np.linalg.norm(left - right)) / denominator


def jaccard_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Weighted Jaccard similarity ``sum(min) / sum(max)`` of the counts."""
    maxima = np.maximum(left, right)
    total_max = float(np.sum(maxima))
    if total_max == 0.0:
        return 1.0
    return float(np.sum(np.minimum(left, right)) / total_max)


def kl_divergence(left: np.ndarray, right: np.ndarray) -> float:
    """Kullback-Leibler divergence ``KL(P_left || P_right)`` in nats.

    Counts are normalised into probability distributions; a small epsilon
    smooths zero bins on the right-hand side so the divergence stays
    finite for histograms with disjoint support.
    """
    epsilon = 1e-12
    p = left / max(float(np.sum(left)), epsilon)
    q = right / max(float(np.sum(right)), epsilon)
    q = np.clip(q, epsilon, None)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


_METRICS: Dict[str, MetricFunction] = {
    "cosine": cosine_similarity,
    "l1": l1_similarity,
    "l2": l2_similarity,
    "jaccard": jaccard_similarity,
}


def available_metrics() -> Tuple[str, ...]:
    """Names of the registered similarity metrics."""
    return tuple(sorted(_METRICS))


def get_metric(name: str) -> MetricFunction:
    """Look up a similarity metric by name (case-insensitive)."""
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown similarity metric {name!r}; available: {available_metrics()}"
        ) from None


def register_metric(name: str, function: MetricFunction) -> None:
    """Register a custom similarity metric under ``name``.

    The function must map two aligned count vectors to a similarity in
    ``[0, 1]`` where 1 means identical.
    """
    _METRICS[name.lower()] = function


def histogram_similarity(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Similarity between two token->count mappings under ``metric``."""
    left, right = align_frequencies(original, other)
    return get_metric(metric)(left, right)


def similarity_percent(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Similarity expressed as a percentage in ``[0, 100]``."""
    return 100.0 * histogram_similarity(original, other, metric=metric)


def distortion_percent(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    metric: str = "cosine",
) -> float:
    """Distortion = ``100 - similarity_percent`` — the quantity bounded by ``b``."""
    return 100.0 - similarity_percent(original, other, metric=metric)


def ranking(frequencies: FrequencyMap) -> Tuple[str, ...]:
    """Tokens ordered by descending frequency with deterministic tie-break."""
    return tuple(
        token
        for token, _count in sorted(
            frequencies.items(), key=lambda item: (-item[1], item[0])
        )
    )


def rank_changes(original: FrequencyMap, other: FrequencyMap) -> int:
    """Number of tokens whose rank position differs between two histograms.

    This is the metric behind the paper's claim that WM-OBT and WM-RVS
    change the ranking of 998 and 987 out of 1000 tokens while FreqyWM
    changes none. Tokens appearing in only one histogram count as changed.
    """
    original_rank = {token: index for index, token in enumerate(ranking(original))}
    other_rank = {token: index for index, token in enumerate(ranking(other))}
    tokens = set(original_rank) | set(other_rank)
    changed = 0
    for token in tokens:
        if original_rank.get(token) != other_rank.get(token):
            changed += 1
    return changed


def ranking_preserved(
    original: FrequencyMap,
    other: FrequencyMap,
    *,
    strict: bool = False,
) -> bool:
    """Whether the descending-frequency ranking is preserved.

    With ``strict=False`` (the default, matching the paper's constraint)
    the order of the original ranking must remain *non-increasing* in the
    new histogram — ties introduced by the watermark are allowed because
    they do not invert any pair of tokens. With ``strict=True`` the exact
    rank permutation must be identical.
    """
    if strict:
        return rank_changes(original, other) == 0
    order = ranking(original)
    counts = [other.get(token, 0) for token in order]
    return all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))


__all__ = [
    "FrequencyMap",
    "MetricFunction",
    "align_frequencies",
    "cosine_similarity",
    "l1_similarity",
    "l2_similarity",
    "jaccard_similarity",
    "kl_divergence",
    "available_metrics",
    "get_metric",
    "register_metric",
    "histogram_similarity",
    "similarity_percent",
    "distortion_percent",
    "ranking",
    "rank_changes",
    "ranking_preserved",
]
