"""FreqyWM: Frequency Watermarking for the New Data Economy — reproduction.

This package is a full reimplementation of the FreqyWM watermarking system
(Işler et al., ICDE 2024): watermark generation and detection over token
frequency histograms, the attack suite used in the paper's robustness
analysis, the false-positive probability analysis, the WM-OBT / WM-RVS
comparison baselines, synthetic substrates for the evaluation datasets,
and an ownership-dispute protocol.

Quickstart
----------
>>> from repro import generate_watermark, detect_watermark
>>> tokens = ["youtube.com"] * 1098 + ["facebook.com"] * 980 + ["google.com"] * 674
>>> result = generate_watermark(tokens, budget_percent=2.0, modulus_cap=31, rng=7)
>>> detection = detect_watermark(result.watermarked_histogram, result.secret)
>>> bool(detection.accepted)
True
"""

from repro.core import (
    BatchDetectionReport,
    BatchEmbeddingReport,
    DetectionConfig,
    DetectionResult,
    DetectorCache,
    GenerationConfig,
    MultiWatermarker,
    ProvenanceChain,
    SelectionResult,
    ShardedDetectionPool,
    ShardedEmbeddingPool,
    StreamingHistogramBuilder,
    TokenHistogram,
    TokenPair,
    WatermarkDetector,
    WatermarkGenerator,
    WatermarkResult,
    WatermarkSecret,
    detect_many,
    detect_many_secrets,
    detect_watermark,
    embed_many,
    generate_watermark,
)
from repro.exceptions import ReproError
from repro.service import (
    DetectionService,
    ServiceConfig,
    SyncDetectionService,
)

__version__ = "1.6.0"

__all__ = [
    "BatchDetectionReport",
    "BatchEmbeddingReport",
    "DetectionConfig",
    "DetectionResult",
    "DetectorCache",
    "GenerationConfig",
    "MultiWatermarker",
    "ProvenanceChain",
    "SelectionResult",
    "ShardedDetectionPool",
    "ShardedEmbeddingPool",
    "StreamingHistogramBuilder",
    "TokenHistogram",
    "TokenPair",
    "WatermarkDetector",
    "WatermarkGenerator",
    "WatermarkResult",
    "WatermarkSecret",
    "detect_many",
    "detect_many_secrets",
    "detect_watermark",
    "embed_many",
    "generate_watermark",
    "DetectionService",
    "ServiceConfig",
    "SyncDetectionService",
    "ReproError",
    "__version__",
]
