"""Distortion analysis between original and watermarked histograms.

Section IV-D compares FreqyWM against WM-OBT and WM-RVS on two axes —
similarity of the watermarked histogram to the original, and how many
tokens changed rank — plus the mean and standard deviation of the
per-token changes. This module computes all of those in one report so the
baseline-comparison benchmark and the examples share the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.core.similarity import (
    align_frequencies,
    rank_changes,
    ranking_preserved,
    similarity_percent,
)


@dataclass(frozen=True)
class DistortionReport:
    """Full distortion profile of one watermarking method's output.

    Attributes
    ----------
    method:
        Label of the method that produced the watermarked histogram.
    similarity_percent:
        Cosine similarity (percent) between original and watermarked.
    distortion_percent:
        ``100 - similarity_percent``.
    rank_changes:
        Number of tokens whose rank position changed.
    ranking_preserved:
        Whether the original descending order remains non-increasing.
    mean_change / std_change:
        Mean and standard deviation of the signed per-token count changes.
    total_absolute_change:
        Sum of absolute per-token changes (token insertions + removals).
    max_absolute_change:
        Largest single-token change.
    tokens_changed:
        Number of tokens whose count changed at all.
    """

    method: str
    similarity_percent: float
    distortion_percent: float
    rank_changes: int
    ranking_preserved: bool
    mean_change: float
    std_change: float
    total_absolute_change: int
    max_absolute_change: int
    tokens_changed: int

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for table printing."""
        return {
            "method": self.method,
            "similarity_percent": self.similarity_percent,
            "distortion_percent": self.distortion_percent,
            "rank_changes": self.rank_changes,
            "ranking_preserved": self.ranking_preserved,
            "mean_change": self.mean_change,
            "std_change": self.std_change,
            "total_absolute_change": self.total_absolute_change,
            "max_absolute_change": self.max_absolute_change,
            "tokens_changed": self.tokens_changed,
        }


def distortion_report(
    original: Mapping[str, int],
    watermarked: Mapping[str, int],
    *,
    method: str = "freqywm",
    metric: str = "cosine",
) -> DistortionReport:
    """Compute the full distortion profile of ``watermarked`` vs ``original``."""
    left, right = align_frequencies(original, watermarked)
    changes = right - left
    similarity = similarity_percent(original, watermarked, metric=metric)
    return DistortionReport(
        method=method,
        similarity_percent=similarity,
        distortion_percent=100.0 - similarity,
        rank_changes=rank_changes(original, watermarked),
        ranking_preserved=ranking_preserved(original, watermarked),
        mean_change=float(np.mean(changes)),
        std_change=float(np.std(changes)),
        total_absolute_change=int(np.sum(np.abs(changes))),
        max_absolute_change=int(np.max(np.abs(changes))) if changes.size else 0,
        tokens_changed=int(np.count_nonzero(changes)),
    )


def compare_methods(
    original: Mapping[str, int],
    watermarked_by_method: Mapping[str, Mapping[str, int]],
    *,
    metric: str = "cosine",
) -> Dict[str, DistortionReport]:
    """Distortion reports for several methods against the same original."""
    return {
        method: distortion_report(original, histogram, method=method, metric=metric)
        for method, histogram in watermarked_by_method.items()
    }


def moment_preservation(
    original: Mapping[str, int], watermarked: Mapping[str, int]
) -> Dict[str, float]:
    """How much the first two moments of the count distribution moved.

    Prior numerical-database watermarks advertise preserving the mean and
    standard deviation of the watermarked attribute; this helper quantifies
    the same for histogram counts so the comparison section can show that
    moment preservation alone says little about distribution-shape
    distortion.
    """
    left, right = align_frequencies(original, watermarked)
    return {
        "original_mean": float(np.mean(left)),
        "watermarked_mean": float(np.mean(right)),
        "mean_shift": float(np.mean(right) - np.mean(left)),
        "original_std": float(np.std(left)),
        "watermarked_std": float(np.std(right)),
        "std_shift": float(np.std(right) - np.std(left)),
    }


__all__ = ["DistortionReport", "distortion_report", "compare_methods", "moment_preservation"]
