"""Plain-text table rendering for experiment results.

The benchmark harness regenerates the paper's tables and figure series as
rows printed to stdout; this module keeps that formatting in one place so
every benchmark and example produces consistent, readable output without a
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def _format_value(value: object, float_digits: int) -> str:
    """Render one cell: floats get fixed precision, everything else str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    header = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column, ""), float_digits) for column in header]
        for row in rows
    ]
    widths = [
        max(len(header[index]), *(len(row[index]) for row in rendered))
        for index in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Mapping[object, Sequence[float]],
    *,
    float_digits: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a figure-style series: one x column and several y columns."""
    rows = []
    for x_value, y_values in points.items():
        row: Dict[str, object] = {x_label: x_value}
        for label, value in zip(y_labels, y_values):
            row[label] = value
        rows.append(row)
    return format_table(rows, columns=[x_label, *y_labels], float_digits=float_digits, title=title)


def print_table(rows: Sequence[Mapping[str, object]], **kwargs: object) -> None:
    """Print :func:`format_table` output (convenience for benchmarks)."""
    print(format_table(rows, **kwargs))  # noqa: T201 - intentional console output


__all__ = ["format_table", "format_series", "print_table"]
