"""Analysis utilities: false-positive bounds, distortion, decomposition."""

from repro.analysis.decomposition import (
    Decomposition,
    component_difference,
    decompose,
    series_similarity_percent,
)
from repro.analysis.distortion import (
    DistortionReport,
    compare_methods,
    distortion_report,
    moment_preservation,
)
from repro.analysis.false_positive import (
    FalsePositiveProfile,
    empirical_false_positive_rate,
    false_positive_bound,
    markov_bound,
    pair_false_positive_probability,
    poisson_binomial_pmf,
    poisson_binomial_survival,
    profile_from_moduli,
    survival_curve,
    uniform_probability_profile,
)
from repro.analysis.reporting import format_series, format_table, print_table

__all__ = [
    "Decomposition",
    "component_difference",
    "decompose",
    "series_similarity_percent",
    "DistortionReport",
    "compare_methods",
    "distortion_report",
    "moment_preservation",
    "FalsePositiveProfile",
    "empirical_false_positive_rate",
    "false_positive_bound",
    "markov_bound",
    "pair_false_positive_probability",
    "poisson_binomial_pmf",
    "poisson_binomial_survival",
    "profile_from_moduli",
    "survival_curve",
    "uniform_probability_profile",
    "format_series",
    "format_table",
    "print_table",
]
