"""False-positive probability analysis — Section III-B4.

A false positive is "detecting" a watermark on a dataset that does not
carry it. For an unwatermarked pair the remainder ``(f_i - f_j) mod s_ij``
is modelled as uniform, so the pair verifies at threshold ``t`` with some
probability ``p_m`` (``(t + 1) / s_ij`` for integer thresholds, ``t / s``
in the paper's continuous approximation). With ``n`` stored pairs, the
number of accepted pairs ``S_n = sum_m X_m`` is a Poisson-Binomial random
variable, and the dataset is falsely accepted when ``S_n >= k``.

The paper derives two results we reproduce here:

* **Markov bound** — ``P(S_n >= k) <= mu / k`` with ``mu = sum_m p_m``; as
  ``t -> 0`` (so ``mu -> 0``) or ``k -> infinity`` the bound, and hence
  the false-positive probability, goes to zero.
* **Exact survival function** — computed through the Discrete Fourier
  Transform of the Poisson-Binomial characteristic function (the paper
  evaluates it for ``n = 50`` with ``p_m ~ Uniform[0, 1]``), showing the
  survival probability reaching 0 as ``k`` approaches ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


def pair_false_positive_probability(modulus: int, threshold: int) -> float:
    """Probability that an unwatermarked pair verifies at threshold ``t``.

    With the remainder uniform on ``{0, ..., modulus-1}`` and the paper's
    acceptance rule ``remainder <= t`` the probability is
    ``min(1, (t + 1) / modulus)``.
    """
    if modulus < 2:
        raise ConfigurationError(f"modulus must be >= 2, got {modulus}")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    return min(1.0, (threshold + 1) / modulus)


def poisson_binomial_pmf(probabilities: Sequence[float]) -> np.ndarray:
    """Exact PMF of a Poisson-Binomial distribution via the DFT method.

    Given success probabilities ``p_1..p_n``, returns an array of length
    ``n + 1`` whose ``j``-th entry is ``P(S_n = j)``. The characteristic
    function is evaluated at the ``n + 1`` roots of unity and inverted with
    an inverse FFT — the same construction the paper cites.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.size == 0:
        return np.array([1.0])
    if np.any((p < 0) | (p > 1)):
        raise ConfigurationError("success probabilities must lie in [0, 1]")
    n = p.size
    size = n + 1
    omega = 2j * np.pi / size
    # Characteristic function at each Fourier frequency l.
    l_values = np.arange(size)
    # phi[l] = prod_m (1 - p_m + p_m * exp(i * omega * l))
    exponentials = np.exp(omega * l_values)  # shape (size,)
    phi = np.prod(1.0 - p[:, None] + p[:, None] * exponentials[None, :], axis=0)
    # Invert the characteristic function:
    #   P(S = k) = (1 / size) * sum_l phi[l] * exp(-i * omega * l * k),
    # which is a forward DFT of phi divided by the transform length.
    pmf = (np.fft.fft(phi) / size).real
    pmf = np.clip(pmf, 0.0, 1.0)
    total = pmf.sum()
    if total > 0:
        pmf = pmf / total
    return pmf


def poisson_binomial_survival(probabilities: Sequence[float], k: int) -> float:
    """Exact ``P(S_n >= k)`` for a Poisson-Binomial with the given ``p_m``.

    The tail sum is clamped into ``[0, 1]``: accumulated rounding in the
    convolution can push it a few ulp past 1, and callers treat the
    value as a probability.
    """
    pmf = poisson_binomial_pmf(probabilities)
    if k <= 0:
        return 1.0
    if k >= pmf.size:
        return 0.0
    return min(1.0, max(0.0, float(pmf[k:].sum())))


def survival_curve(probabilities: Sequence[float]) -> np.ndarray:
    """``P(S_n >= k)`` for every ``k`` in ``0..n`` (the paper's n=50 plot)."""
    pmf = poisson_binomial_pmf(probabilities)
    # Survival at k is the sum of pmf from k to n.
    return np.concatenate((np.cumsum(pmf[::-1])[::-1], [0.0]))[: pmf.size]


def markov_bound(probabilities: Sequence[float], k: int) -> float:
    """Markov's upper bound ``P(S_n >= k) <= mu / k`` (clipped to 1)."""
    if k <= 0:
        return 1.0
    mu = float(np.sum(np.asarray(probabilities, dtype=float)))
    return min(1.0, mu / k)


def false_positive_bound(
    n_pairs: int,
    k: int,
    *,
    modulus: int,
    threshold: int,
) -> float:
    """Closed-form Markov bound for identical pair probabilities.

    This is the practical form an owner uses to pick ``(t, k)``: every
    unwatermarked pair verifies with probability ``(t + 1) / s``, so
    ``mu = n (t + 1) / s`` and the bound is ``mu / k``.
    """
    p = pair_false_positive_probability(modulus, threshold)
    return markov_bound([p] * n_pairs, k)


@dataclass(frozen=True)
class FalsePositiveProfile:
    """The false-positive behaviour of one (n, moduli, t) configuration."""

    pair_probabilities: Tuple[float, ...]
    threshold: int

    @property
    def mean_accepted_pairs(self) -> float:
        """Expected number of falsely accepted pairs (``mu``)."""
        return float(np.sum(self.pair_probabilities))

    def exact_probability(self, k: int) -> float:
        """Exact false-positive probability at detection threshold ``k``."""
        return poisson_binomial_survival(self.pair_probabilities, k)

    def markov_probability(self, k: int) -> float:
        """Markov upper bound at detection threshold ``k``."""
        return markov_bound(self.pair_probabilities, k)

    def minimal_k_for(self, target: float) -> int:
        """Smallest ``k`` whose exact false-positive probability is <= target."""
        for k in range(len(self.pair_probabilities) + 1):
            if self.exact_probability(k) <= target:
                return k
        return len(self.pair_probabilities) + 1


def profile_from_moduli(
    moduli: Sequence[int], threshold: int
) -> FalsePositiveProfile:
    """Build a profile from the actual pair moduli of a secret list."""
    probabilities = tuple(
        pair_false_positive_probability(modulus, threshold) for modulus in moduli
    )
    return FalsePositiveProfile(pair_probabilities=probabilities, threshold=threshold)


def uniform_probability_profile(
    n_pairs: int, *, rng: RngLike = None, threshold: int = 0
) -> FalsePositiveProfile:
    """Profile with ``p_m ~ Uniform[0, 1]`` — the paper's analytical setting."""
    generator = ensure_rng(rng)
    probabilities = tuple(float(value) for value in generator.uniform(0.0, 1.0, size=n_pairs))
    return FalsePositiveProfile(pair_probabilities=probabilities, threshold=threshold)


#: Trials drawn per Monte-Carlo batch: large enough that the acceptance
#: counting runs as a handful of matrix kernels, small enough that the
#: ``(batch, pairs)`` draw matrix stays modest for wide secret lists.
MC_TRIAL_BATCH = 1024


def empirical_false_positive_rate(
    moduli: Sequence[int],
    threshold: int,
    k: int,
    *,
    trials: int = 2000,
    rng: RngLike = None,
    backend: BackendLike = None,
) -> float:
    """Monte-Carlo estimate of the false-positive rate.

    Each trial draws an independent uniform remainder for every pair and
    checks whether at least ``k`` pairs verify — a direct simulation of
    running detection on random, unwatermarked data.

    Trials are drawn in batches and counted through the compute backend's
    :meth:`~repro.core.backend.ArrayBackend.monte_carlo_accept` kernel.
    NumPy's ``Generator.integers`` produces the identical variate stream
    whether drawn row by row or as a ``(batch, pairs)`` matrix, so the
    estimate is bit-identical to the seed implementation's per-trial loop
    for any given ``rng`` seed.
    """
    generator = ensure_rng(rng)
    moduli_array = np.asarray(moduli, dtype=int)
    if np.any(moduli_array < 2):
        raise ConfigurationError("all moduli must be >= 2")
    resolved = resolve_backend(backend)
    hits = 0
    remaining = trials
    while remaining > 0:
        batch = min(MC_TRIAL_BATCH, remaining)
        draws = generator.integers(0, moduli_array, size=(batch, moduli_array.size))
        hits += resolved.monte_carlo_accept(draws, threshold, k)
        remaining -= batch
    return hits / trials


__all__ = [
    "pair_false_positive_probability",
    "poisson_binomial_pmf",
    "poisson_binomial_survival",
    "survival_curve",
    "markov_bound",
    "false_positive_bound",
    "FalsePositiveProfile",
    "profile_from_moduli",
    "uniform_probability_profile",
    "empirical_false_positive_rate",
]
