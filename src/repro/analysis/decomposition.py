"""Time-series decomposition: trend, seasonality, residuals (Figs 6-8).

Section VI checks that applying ten successive watermarks to the eyeWnder
click-stream leaves its standard analytical features — trend, seasonality
and residuals of the daily visit counts — essentially unchanged. The paper
uses an off-the-shelf decomposition; here we implement the classical
additive moving-average decomposition directly (centred moving average for
the trend, per-period means of the detrended series for the seasonal
component, the rest as residuals) so the experiment is dependency-free and
fully inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition ``series = trend + seasonal + residual``."""

    series: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int

    def as_dict(self) -> Dict[str, np.ndarray]:
        """Component arrays keyed by name."""
        return {
            "series": self.series,
            "trend": self.trend,
            "seasonal": self.seasonal,
            "residual": self.residual,
        }


def _centered_moving_average(series: np.ndarray, period: int) -> np.ndarray:
    """Centred moving average of window ``period`` with edge padding.

    For even periods the classical 2x(period) average is used so the
    window stays centred. Edges are filled by extending the nearest valid
    trend value, keeping the output the same length as the input.
    """
    n = series.size
    if period >= n:
        return np.full(n, series.mean())
    if period % 2 == 1:
        kernel = np.ones(period) / period
        valid = np.convolve(series, kernel, mode="valid")
        pad_left = (n - valid.size) // 2
    else:
        kernel = np.ones(period + 1)
        kernel[0] = kernel[-1] = 0.5
        kernel /= period
        valid = np.convolve(series, kernel, mode="valid")
        pad_left = (n - valid.size) // 2
    pad_right = n - valid.size - pad_left
    return np.concatenate(
        (np.full(pad_left, valid[0]), valid, np.full(pad_right, valid[-1]))
    )


def decompose(
    series: Sequence[float],
    *,
    period: int = 7,
) -> Decomposition:
    """Classical additive decomposition of a regularly sampled series.

    Parameters
    ----------
    series:
        The observed values (for the paper's experiment: visits per day).
    period:
        Seasonal period in samples; 7 for daily data with weekly
        seasonality.
    """
    data = np.asarray(series, dtype=float)
    if data.size < 2:
        raise ConfigurationError("decomposition needs at least two observations")
    if period < 1:
        raise ConfigurationError(f"period must be >= 1, got {period}")
    trend = _centered_moving_average(data, period)
    detrended = data - trend
    seasonal = np.zeros_like(data)
    if period > 1 and data.size >= period:
        means = np.array(
            [detrended[offset::period].mean() for offset in range(period)]
        )
        means -= means.mean()  # centre the seasonal component
        seasonal = np.array([means[index % period] for index in range(data.size)])
    residual = data - trend - seasonal
    return Decomposition(
        series=data, trend=trend, seasonal=seasonal, residual=residual, period=period
    )


def component_difference(
    before: Decomposition, after: Decomposition
) -> Dict[str, float]:
    """Root-mean-square difference of each component between two series.

    The two series must have the same length and period (the watermarking
    experiment compares the same days before and after embedding). The
    values are normalised by the RMS of the original component so they
    read as relative changes.
    """
    if before.series.size != after.series.size:
        raise ConfigurationError("decompositions cover different numbers of samples")
    report: Dict[str, float] = {}
    for name in ("series", "trend", "seasonal", "residual"):
        original = getattr(before, name)
        modified = getattr(after, name)
        scale = float(np.sqrt(np.mean(np.square(original))))
        difference = float(np.sqrt(np.mean(np.square(modified - original))))
        report[name] = difference / scale if scale > 0 else difference
    return report


def series_similarity_percent(before: Sequence[float], after: Sequence[float]) -> float:
    """Cosine similarity (percent) between two equally indexed series."""
    left = np.asarray(before, dtype=float)
    right = np.asarray(after, dtype=float)
    if left.size != right.size:
        raise ConfigurationError("series must have the same length")
    denominator = np.linalg.norm(left) * np.linalg.norm(right)
    if denominator == 0:
        return 100.0
    return float(100.0 * np.dot(left, right) / denominator)


__all__ = [
    "Decomposition",
    "decompose",
    "component_difference",
    "series_similarity_percent",
]
