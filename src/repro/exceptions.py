"""Exception hierarchy for the FreqyWM reproduction package.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications embedding the library can catch a single base class. More
specific subclasses communicate which stage of the watermarking pipeline
failed and carry enough context to act on the failure programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a user supplied configuration value is invalid.

    Examples include a non-positive modulus ``z``, a distortion budget
    outside ``[0, 100]`` or detection thresholds that cannot be satisfied.
    """


class BackendError(ConfigurationError):
    """Raised when a compute backend is unknown or unavailable.

    Selecting an unregistered backend name (via argument or the
    ``FREQYWM_BACKEND`` environment variable) or a registered backend
    whose library is not installed (e.g. ``cupy`` without CuPy) raises
    this; it subclasses :class:`ConfigurationError` because the backend
    choice is user-supplied configuration.
    """


class HistogramError(ReproError):
    """Raised when a token histogram cannot be built or is malformed."""


class EligibilityError(ReproError):
    """Raised when eligible-pair generation receives inconsistent inputs."""


class MatchingError(ReproError):
    """Raised when the pair-selection stage (MWM / knapsack / heuristics)
    cannot produce a valid matching."""


class GenerationError(ReproError):
    """Raised when watermark generation cannot complete.

    The most common cause is a dataset with (near-)uniform token
    frequencies where no eligible pair exists within the ranking
    constraint, which the paper explicitly calls out as unsupported.
    """


class DetectionError(ReproError):
    """Raised when watermark detection receives invalid secrets or data."""


class AttackError(ReproError):
    """Raised when an attack simulation is configured inconsistently."""


class DatasetError(ReproError):
    """Raised by the dataset substrates (loaders and generators)."""


class DisputeError(ReproError):
    """Raised by the ownership-dispute (judge / registry) protocol."""


class BaselineError(ReproError):
    """Raised by the WM-OBT / WM-RVS baseline implementations."""


class ServiceError(ReproError):
    """Raised by the resident detection service layer.

    Covers malformed wire requests, references to unregistered secrets,
    and submissions against a service that is not running.
    """


class SchedulerError(ReproError):
    """Raised by the pluggable task scheduler (:mod:`repro.exec`).

    Covers unknown scheduler/task-function names, unreachable remote
    workers, and execution plans that cannot be dispatched.
    """


class BlobError(SchedulerError):
    """Raised by the content-addressed data plane (:mod:`repro.exec.blobs`).

    Covers malformed blob frames, digest mismatches and shared-memory
    transport failures. Blob errors are infrastructure errors, not task
    errors: schedulers may retry the affected task over the inline
    payload path before surfacing them.
    """


class BlobNotFoundError(BlobError):
    """A blob digest was requested that this store no longer holds.

    Raised when a ``get`` misses both the in-process LRU and the
    optional on-disk spill directory, and — over the wire — when a
    worker's ``blob-request`` names a digest the client side evicted.
    Carries the ``digest`` so callers can re-ship or fall back inline.
    """

    def __init__(self, message: str, *, digest: str = ""):
        super().__init__(message)
        self.digest = digest


class WorkerCrashError(SchedulerError):
    """A scheduler worker died while running a task, retries exhausted.

    Carries the ``fingerprint`` of the lost task and the number of
    ``attempts`` made, so callers can resubmit the exact task elsewhere.
    Schedulers retry a crashed task a bounded number of times before
    raising this — one crash is an incident, repeated crashes on the
    same task are evidence the task itself kills its host.
    """

    def __init__(self, message: str, *, fingerprint: str = "", attempts: int = 0):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.attempts = attempts
