"""Command line interface for the FreqyWM reproduction.

The ``freqywm`` entry point mirrors the paper's two algorithms plus the
most useful utilities:

* ``freqywm generate`` — watermark a token file (token-per-line) and store
  the watermarked file and the secret list; ``--chunk-size M`` switches to
  streaming ingestion for files too large to load at once, and a
  *directory* input watermarks every token file in it as a batch
  (``--workers N`` shards the embedding across processes).
* ``freqywm detect``   — run detection of a stored secret on a suspected
  token file, or screen a whole directory of suspect files as a batch
  (``--workers N`` shards the screen across processes).
* ``freqywm attack``   — simulate one of the Section V attacks against a
  watermarked file and report whether detection survives.
* ``freqywm synth``    — generate a synthetic power-law token file for
  experimentation.
* ``freqywm serve``    — run the resident detection service (cached
  detectors + request coalescing) speaking JSON-lines on stdio or a Unix
  socket; ``--vault DIR`` additionally serves the ``register`` /
  ``revoke`` / ``attribute`` verbs against a persistent secret vault.
* ``freqywm client``   — screen suspect files through a running
  ``serve`` instance (``--socket``), or through a private spawned one.
* ``freqywm registry`` — operate a persistent multi-tenant secret vault
  directly: ``register`` / ``revoke`` buyer watermarks, ``attribute`` a
  leaked file to the buyers whose watermarks it carries (sublinear
  candidate-index screening, see ``docs/registry.md``), and ``show`` the
  vault's ledger and index statistics.
* ``freqywm experiment`` — run a declarative experiment spec (grid sweep
  over datasets × secrets × attacks × thresholds) against the
  content-addressed run cache, or re-render a finished run's
  paper-mapped Markdown/JSON report (``docs/experiments.md``).
* ``freqywm worker``   — serve scheduler tasks over a Unix or TCP socket
  for ``--scheduler remote`` clients (``docs/scheduler.md``). The
  sharding subcommands (``generate`` / ``detect`` directory mode,
  ``experiment run``) accept ``--scheduler remote --address ADDR`` to
  fan their ``--workers`` sharding out to such workers instead of local
  processes.

Every subcommand prints a small plain-text report; machine-readable output
is available with ``--json`` (field-by-field schemas in ``docs/cli.md``).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    ReorderingNoiseAttack,
)
from repro.attacks.sampling import SamplingAttack, rescale_suspect
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.embedding import ShardedEmbeddingPool
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.sharding import ShardedDetectionPool
from repro.core.transform import apply_deltas_streaming, histogram_deltas
from repro.datasets.loaders import (
    iter_tokens,
    load_histogram_streaming,
    load_token_file,
    save_token_file,
)
from repro.datasets.synthetic import generate_power_law_tokens
from repro.exceptions import DatasetError, ReproError
from repro.exec.policy import ExecutionPolicy
from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger, log_record, parse_log_env
from repro.utils.rng import derive_rng


def _positive_int(value: str) -> int:
    """Argparse type for integer options that must be >= 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _execution_policy(args: argparse.Namespace) -> ExecutionPolicy:
    """Fold --workers/--scheduler/--address into one ExecutionPolicy.

    With the remote scheduler, ``--workers`` is ignored — parallelism is
    the number of ``--address`` workers.
    """
    scheduler = getattr(args, "scheduler", "local")
    addresses = tuple(getattr(args, "address", ()) or ())
    workers = None if scheduler == "remote" else args.workers
    return ExecutionPolicy(
        workers=workers,
        scheduler=scheduler,
        addresses=addresses,
        telemetry=getattr(args, "telemetry", None),
    )


def _print_report(report: Dict[str, object], as_json: bool) -> None:
    """Emit a report dictionary as JSON or as aligned key: value lines."""
    if as_json:
        print(json.dumps(report, indent=2, default=str))  # noqa: T201
        return
    width = max(len(key) for key in report) if report else 0
    for key, value in report.items():
        print(f"{key.ljust(width)} : {value}")  # noqa: T201


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GenerationConfig(
        budget_percent=args.budget,
        modulus_cap=args.modulus,
        strategy=args.strategy,
    )
    if args.input.is_dir():
        return _generate_directory(args, config)
    generator = WatermarkGenerator(config, rng=args.seed)
    if args.chunk_size is not None:
        # Streaming mode: the input file is never loaded whole. One
        # chunked pass builds the histogram, generation runs in
        # histogram-only mode, and a second pass streams the edited
        # token sequence straight to the output file.
        histogram = load_histogram_streaming(args.input, chunk_size=args.chunk_size)
        result = generator.generate(histogram)
        deltas = histogram_deltas(histogram, result.watermarked_histogram)
        save_token_file(
            apply_deltas_streaming(
                iter_tokens(args.input),
                deltas,
                histogram,
                rng=derive_rng(args.seed, "stream-transform")
                if args.seed is not None
                else None,
            ),
            args.output,
        )
    else:
        result = generator.generate(load_token_file(args.input))
        if result.watermarked_tokens is not None:
            save_token_file(result.watermarked_tokens, args.output)
    result.secret.save(args.secret)
    report = result.summary()
    if args.chunk_size is not None:
        report["streaming"] = True
        report["chunk_size"] = args.chunk_size
    report["output"] = str(args.output)
    report["secret_file"] = str(args.secret)
    _print_report(report, args.json)
    return 0


def _generate_directory(args: argparse.Namespace, config: GenerationConfig) -> int:
    """Directory-scale embedding: watermark every token file in ``input``.

    Mirrors ``detect DIR``: ``output`` and ``secret`` become directories
    (created as needed) receiving one watermarked file and one secret
    list per input file; ``--workers N`` shards the embedding so each
    worker loads, watermarks and writes its own chunk of files.
    """
    if args.chunk_size is not None:
        raise ReproError(
            "--chunk-size applies to single-file streaming mode, not to "
            "directory embedding (each file is loaded whole inside its worker)"
        )
    files = _token_files(args.input)
    policy = _execution_policy(args)
    with ShardedEmbeddingPool(config, seed=args.seed, policy=policy) as pool:
        summaries = pool.embed_files(files, args.output, args.secret)
    total = len(summaries)
    payload: Dict[str, object] = {
        "datasets": total,
        "workers": args.workers,
        "selected_pairs_total": sum(
            int(summary["selected_pairs"]) for summary in summaries
        ),
        "mean_distortion_percent": (
            sum(float(summary["distortion_percent"]) for summary in summaries) / total
            if total
            else 0.0
        ),
        "output_dir": str(args.output),
        "secret_dir": str(args.secret),
    }
    if args.json:
        payload["files"] = summaries
        _print_report(payload, True)
    else:
        for summary in summaries:
            print(  # noqa: T201
                f"{summary['input']} : {summary['selected_pairs']} pairs, "
                f"{float(summary['distortion_percent']):.4f}% distortion "
                f"-> {summary['output']}"
            )
        _print_report(payload, False)
    return 0


def _detection_config(args: argparse.Namespace) -> DetectionConfig:
    return DetectionConfig(
        pair_threshold=args.threshold,
        min_accepted_pairs=args.min_pairs,
        min_accepted_fraction=args.min_fraction,
    )


def _token_files(directory: Path) -> list:
    """The token files of a batch directory (screening or embedding), sorted."""
    files = sorted(
        path
        for path in directory.iterdir()
        if path.is_file() and path.suffix in {".txt", ".tokens"}
    )
    if not files:
        raise DatasetError(
            f"directory {directory!s} contains no .txt/.tokens token files"
        )
    return files


def _cmd_detect(args: argparse.Namespace) -> int:
    secret = WatermarkSecret.load(args.secret)
    config = _detection_config(args)
    if not args.input.is_dir():
        detector = WatermarkDetector(secret, config)
        result = detector.detect(load_token_file(args.input))
        _print_report(result.summary(), args.json)
        return 0 if result.accepted else 1
    # Batch screening: every token file in the directory is one suspected
    # dataset (even when there is just one, so the report schema is stable).
    # Only the paths are dispatched — each worker stream-loads and screens
    # its own chunk, so the dominant load-and-count cost parallelises and
    # no process ever holds more than one chunk of histograms.
    files = _token_files(args.input)
    with ShardedDetectionPool(secret, config, policy=_execution_policy(args)) as pool:
        report = pool.detect_files(files)
    payload: Dict[str, object] = report.summary()
    payload["workers"] = args.workers
    payload["suspects"] = {
        str(path): result.summary() for path, result in zip(files, report.results)
    }
    if args.json:
        _print_report(payload, True)
    else:
        for path, result in zip(files, report.results):
            verdict = "accepted" if result.accepted else "rejected"
            print(  # noqa: T201
                f"{path} : {verdict} "
                f"({result.accepted_pairs}/{result.total_pairs} pairs)"
            )
        _print_report(report.summary(), False)
    return 0 if report.accepted_count == len(files) else 1


def _build_attack(args: argparse.Namespace):
    if args.kind == "sampling":
        return SamplingAttack(args.fraction, rng=args.seed)
    if args.kind == "destroy-random":
        return BoundaryNoiseAttack(rng=args.seed)
    if args.kind == "destroy-percent":
        return PercentageNoiseAttack(args.percent, rng=args.seed)
    if args.kind == "destroy-reorder":
        return ReorderingNoiseAttack(args.percent, rng=args.seed)
    raise ReproError(f"unknown attack kind {args.kind!r}")


def _cmd_attack(args: argparse.Namespace) -> int:
    tokens = load_token_file(args.input)
    secret = WatermarkSecret.load(args.secret)
    histogram = TokenHistogram.from_tokens(tokens)
    attack = _build_attack(args)
    attacked = attack.tamper(histogram)
    if args.kind == "sampling":
        attacked = rescale_suspect(attacked, histogram.total_count())
    detector = WatermarkDetector(secret, _detection_config(args))
    result = detector.detect(attacked)
    report = result.summary()
    report["attack"] = attack.name
    report.update({f"attack_{key}": value for key, value in attack.parameters().items()})
    _print_report(report, args.json)
    return 0 if result.accepted else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DetectionService, ServiceConfig, serve_stdio, serve_unix

    service_config = ServiceConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        shard_workers=args.workers if args.workers > 1 else None,
    )
    detection_config = _detection_config(args)
    vault = None
    if args.vault is not None:
        from repro.dispute import SecretVault

        vault = SecretVault(args.vault)
        print(  # noqa: T201
            f"vault {args.vault}: {len(vault.active_buyers)} active buyers",
            file=sys.stderr,
        )

    async def run() -> int:
        async with DetectionService(service_config, registry=vault) as service:
            for path in args.secret:
                fingerprint = service.register_secret(
                    WatermarkSecret.load(path), detection_config
                )
                # stderr keeps stdout protocol-only in stdio mode.
                print(f"registered {path}: {fingerprint}", file=sys.stderr)  # noqa: T201
            if args.socket is not None:
                await serve_unix(service, args.socket)
            else:
                await serve_stdio(service)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0


#: Suspect files per pipelined client burst: one burst's histograms are
#: resident at a time (mirroring the sharded path's chunked dispatch)
#: while still giving the server a window worth coalescing.
_CLIENT_BURST = 64


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import DetectRequest, ServiceClient

    secret_payload = WatermarkSecret.load(args.secret).to_dict()
    config_payload: Dict[str, object] = {
        "pair_threshold": args.threshold,
        "min_accepted_fraction": args.min_fraction,
    }
    if args.min_pairs is not None:
        config_payload["min_accepted_pairs"] = args.min_pairs
    if args.socket is not None:
        client = ServiceClient.connect_unix(args.socket)
    else:
        client = ServiceClient.spawn()
    responses = []
    with client:
        for start in range(0, len(args.suspects), _CLIENT_BURST):
            burst = [
                DetectRequest(
                    request_id=f"{start + offset}:{path.name}",
                    counts=load_histogram_streaming(path).as_dict(),
                    secret=secret_payload,
                    config=config_payload,
                )
                for offset, path in enumerate(
                    args.suspects[start : start + _CLIENT_BURST]
                )
            ]
            responses.extend(client.request(burst))
    all_accepted = all(response.ok and response.accepted for response in responses)
    if args.json:
        # A list, not a path-keyed map: the same file may legitimately be
        # listed twice (overlapping globs) and every verdict must survive.
        payload: Dict[str, object] = {
            "suspects": [
                {"path": str(path), **response.to_dict()}
                for path, response in zip(args.suspects, responses)
            ],
            "accepted_datasets": sum(
                1 for response in responses if response.ok and response.accepted
            ),
            "datasets": len(responses),
        }
        _print_report(payload, True)
    else:
        for path, response in zip(args.suspects, responses):
            if not response.ok:
                print(f"{path} : error ({response.error})")  # noqa: T201
                continue
            verdict = "accepted" if response.accepted else "rejected"
            print(  # noqa: T201
                f"{path} : {verdict} "
                f"({response.accepted_pairs}/{response.total_pairs} pairs, "
                f"batch={response.batch_size})"
            )
    return 0 if all_accepted else 1


def _parse_metadata(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse repeated ``--meta key=value`` options into a dictionary."""
    metadata: Dict[str, str] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ReproError(f"--meta expects key=value, got {pair!r}")
        metadata[key] = value
    return metadata


def _open_vault(args: argparse.Namespace):
    from repro.dispute import SecretVault

    return SecretVault(args.vault)


def _cmd_registry_register(args: argparse.Namespace) -> int:
    vault = _open_vault(args)
    entry = vault.register(
        args.buyer, WatermarkSecret.load(args.secret), **_parse_metadata(args.meta)
    )
    _print_report(
        {
            "buyer_id": entry.buyer_id,
            "fingerprint": entry.fingerprint,
            "active_buyers": len(vault.active_buyers),
            "vault": str(args.vault),
        },
        args.json,
    )
    return 0


def _cmd_registry_revoke(args: argparse.Namespace) -> int:
    vault = _open_vault(args)
    entry = vault.revoke(args.buyer, **_parse_metadata(args.meta))
    _print_report(
        {
            "buyer_id": entry.buyer_id,
            "fingerprint": entry.fingerprint,
            "active_buyers": len(vault.active_buyers),
            "vault": str(args.vault),
        },
        args.json,
    )
    return 0


def _cmd_registry_attribute(args: argparse.Namespace) -> int:
    vault = _open_vault(args)
    histogram = load_histogram_streaming(args.suspect)
    matches = vault.attribute_leak(histogram, detection=_detection_config(args))
    stats = vault.last_attribution
    payload: Dict[str, object] = {
        "suspect": str(args.suspect),
        "matches": [
            {"buyer_id": buyer, "accepted_fraction": fraction}
            for buyer, fraction in matches
        ],
        "mode": stats.mode if stats is not None else "empty",
        "candidates": stats.candidates if stats is not None else 0,
        "active_secrets": stats.active_secrets if stats is not None else 0,
    }
    if args.json:
        _print_report(payload, True)
    else:
        for buyer, fraction in matches:
            print(f"{buyer} : accepted fraction {fraction:.3f}")  # noqa: T201
        report = dict(payload)
        del report["matches"]
        report["matched_buyers"] = len(matches)
        _print_report(report, False)
    return 0 if matches else 1


def _cmd_registry_show(args: argparse.Namespace) -> int:
    vault = _open_vault(args)
    index = vault.index_stats()
    _print_report(
        {
            "vault": str(args.vault),
            "ledger_entries": len(vault),
            "active_buyers": len(vault.active_buyers),
            "chain_valid": vault.verify_chain(),
            "index_buckets": index.buckets,
            "index_postings": index.postings,
            "group_test_threshold": index.group_test_threshold,
        },
        args.json,
    )
    return 0


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    from repro.experiments import load_spec, run_experiment, write_report

    spec = load_spec(args.spec)
    run_dir = args.out if args.out is not None else Path("experiment-runs") / spec.name
    outcome = run_experiment(spec, run_dir, policy=_execution_policy(args))
    json_path, md_path = write_report(run_dir)
    report: Dict[str, object] = outcome.summary()
    report["report_json"] = str(json_path)
    report["report_md"] = str(md_path)
    _print_report(report, args.json)
    return 0


def _cmd_experiment_report(args: argparse.Namespace) -> int:
    from repro.experiments import build_report, render_markdown, write_report

    report = build_report(args.run_dir)
    json_path, md_path = write_report(args.run_dir, report)
    if args.json:
        _print_report(report, True)
    else:
        print(render_markdown(report))  # noqa: T201
        print(f"\nwritten: {json_path} {md_path}")  # noqa: T201
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio
    import importlib

    from repro.exec.scheduler import load_builtin_tasks
    from repro.exec.worker import (
        TaskWorkerServer,
        serve_worker_tcp,
        serve_worker_unix,
    )

    if (args.socket is None) == (args.tcp is None):
        raise ReproError("pass exactly one of --socket PATH or --tcp HOST:PORT")
    tcp_host: Optional[str] = None
    tcp_port = 0
    if args.tcp is not None:
        host, _separator, port_text = args.tcp.rpartition(":")
        if not host or not port_text.isdigit():
            raise ReproError(f"--tcp expects HOST:PORT, got {args.tcp!r}")
        tcp_host, tcp_port = host, int(port_text)
    # Builtin task functions first, then any operator-supplied modules
    # registering custom ones.
    load_builtin_tasks()
    for module in args.import_modules:
        importlib.import_module(module)
    server = TaskWorkerServer(max_state=args.max_state)

    def announce(message: str) -> None:
        # stderr keeps any socket/stdio protocol stream clean; spawners
        # (tests, CI) treat this line as the readiness signal.
        print(message, file=sys.stderr, flush=True)  # noqa: T201

    async def run() -> int:
        import signal

        if args.socket is not None:
            serving = serve_worker_unix(args.socket, server=server, announce=announce)
        else:
            assert tcp_host is not None
            serving = serve_worker_tcp(
                tcp_host, tcp_port, server=server, announce=announce
            )
        # SIGTERM drains into the same graceful path as Ctrl-C so fleet
        # managers get the shutdown summary too.
        task = asyncio.ensure_future(serving)
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, task.cancel)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - win32
            pass
        try:
            await task
        except asyncio.CancelledError:
            pass
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0
    finally:
        announce(f"worker summary: {server.summary_line()}")
        log_record(
            get_logger("exec.worker"),
            logging.INFO,
            "worker shutdown",
            **server.summary(),
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient
    from repro.service.wire import StatsRequest

    if args.socket is not None:
        client = ServiceClient.connect_unix(args.socket)
    else:
        client = ServiceClient.spawn()
    with client:
        response = client.request([StatsRequest(request_id="stats:0")])[0]
    if not response.ok:
        raise ReproError(f"stats request failed: {response.error}")
    if args.format == "json":
        print(json.dumps(response.metrics, indent=2, default=str))  # noqa: T201
    else:
        sys.stdout.write(response.prometheus)
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load_spans, render_report

    spans = load_spans(args.run_dir)
    print(render_report(spans, limit=args.limit))  # noqa: T201
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    tokens = generate_power_law_tokens(
        args.alpha,
        n_tokens=args.tokens,
        sample_size=args.size,
        rng=args.seed,
    )
    save_token_file(tokens, args.output)
    report = {
        "alpha": args.alpha,
        "distinct_tokens": args.tokens,
        "sample_size": args.size,
        "output": str(args.output),
    }
    _print_report(report, args.json)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``freqywm`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="freqywm",
        description="FreqyWM frequency watermarking (ICDE 2024 reproduction)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON reports")
    parser.add_argument(
        "--log",
        default=None,
        metavar="LEVEL[:FORMAT]",
        help=(
            "logging level/format (e.g. debug, info:json); overrides the "
            "FREQYWM_LOG environment variable"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="watermark a token file (or a directory of them)"
    )
    generate.add_argument(
        "input",
        type=Path,
        help=(
            "token-per-line input file, or a directory whose .txt/.tokens "
            "files are watermarked as a batch"
        ),
    )
    generate.add_argument(
        "output",
        type=Path,
        help="watermarked token file to write (a directory for directory input)",
    )
    generate.add_argument(
        "secret",
        type=Path,
        help="secret list (JSON) to write (a directory for directory input)",
    )
    generate.add_argument("--budget", type=float, default=2.0, help="distortion budget b in percent")
    generate.add_argument("--modulus", type=int, default=131, help="modulus cap z")
    generate.add_argument(
        "--strategy", choices=("optimal", "greedy", "random"), default="optimal"
    )
    generate.add_argument("--seed", type=int, default=None, help="seed for reproducible runs")
    generate.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="M",
        help=(
            "streaming mode: ingest the input M tokens at a time and write "
            "the watermarked file without ever loading the dataset whole"
        ),
    )
    generate.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for batch embedding (directory input only)",
    )

    def add_scheduler_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scheduler",
            choices=("local", "remote"),
            default="local",
            help=(
                "execution backend for the sharded path: local worker "
                "processes (default) or remote `freqywm worker` processes"
            ),
        )
        sub.add_argument(
            "--address",
            action="append",
            default=[],
            metavar="ADDR",
            help=(
                "a `freqywm worker` address (unix:/path or host:port); "
                "repeatable, required with --scheduler remote"
            ),
        )

    add_scheduler_arguments(generate)
    generate.set_defaults(handler=_cmd_generate)

    def add_detection_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--threshold", type=int, default=0, help="per-pair threshold t")
        sub.add_argument("--min-pairs", type=int, default=None, help="minimum accepted pairs k")
        sub.add_argument(
            "--min-fraction", type=float, default=0.5, help="minimum accepted pair fraction"
        )

    detect = subparsers.add_parser(
        "detect", help="detect a watermark in a token file (or a directory of them)"
    )
    detect.add_argument(
        "input",
        type=Path,
        help=(
            "suspected token file, or a directory whose .txt/.tokens files "
            "are screened as a batch"
        ),
    )
    detect.add_argument("secret", type=Path, help="secret list (JSON) from generation")
    detect.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for batch screening (directory input only)",
    )
    add_scheduler_arguments(detect)
    add_detection_arguments(detect)
    detect.set_defaults(handler=_cmd_detect)

    attack = subparsers.add_parser("attack", help="attack a watermarked token file")
    attack.add_argument("input", type=Path, help="watermarked token file")
    attack.add_argument("secret", type=Path, help="secret list (JSON) from generation")
    attack.add_argument(
        "--kind",
        choices=("sampling", "destroy-random", "destroy-percent", "destroy-reorder"),
        default="sampling",
    )
    attack.add_argument("--fraction", type=float, default=0.2, help="sampling fraction")
    attack.add_argument("--percent", type=float, default=1.0, help="noise percentage")
    attack.add_argument("--seed", type=int, default=None, help="seed for reproducible runs")
    add_detection_arguments(attack)
    attack.set_defaults(handler=_cmd_attack)

    serve = subparsers.add_parser(
        "serve",
        help="run the resident detection service (JSON-lines on stdio or a Unix socket)",
    )
    serve.add_argument(
        "--secret",
        type=Path,
        action="append",
        default=[],
        metavar="FILE",
        help=(
            "secret list (JSON) to pre-register; repeatable. The fingerprint "
            "printed on stderr is the secret_fingerprint clients may reference."
        ),
    )
    serve.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="listen on a Unix domain socket instead of stdio",
    )
    serve.add_argument(
        "--vault",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "back the register/revoke/attribute verbs with a persistent "
            "secret vault at DIR (created if absent)"
        ),
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=64,
        help="most requests coalesced into one vectorized pass (default 64)",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="coalescing window in milliseconds (default 2)",
    )
    serve.add_argument(
        "--cache-capacity",
        type=_positive_int,
        default=8,
        help="detectors kept resident in the LRU cache (default 8)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="shard coalesced batches across N worker processes when large",
    )
    add_detection_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    client = subparsers.add_parser(
        "client",
        help="screen suspect token files through a detection server",
    )
    client.add_argument("secret", type=Path, help="secret list (JSON) from generation")
    client.add_argument(
        "suspects", type=Path, nargs="+", help="suspected token files to screen"
    )
    client.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "connect to a running `freqywm serve --socket PATH`; when omitted "
            "a private stdio server is spawned for this invocation"
        ),
    )
    add_detection_arguments(client)
    client.set_defaults(handler=_cmd_client)

    registry = subparsers.add_parser(
        "registry",
        help="operate a persistent multi-tenant secret vault (docs/registry.md)",
    )
    registry_sub = registry.add_subparsers(dest="registry_command", required=True)

    registry_register = registry_sub.add_parser(
        "register", help="durably register a buyer's watermark secret"
    )
    registry_register.add_argument("vault", type=Path, help="vault directory")
    registry_register.add_argument("buyer", help="buyer identifier (unique while active)")
    registry_register.add_argument(
        "secret", type=Path, help="secret list (JSON) from generation"
    )
    registry_register.add_argument(
        "--meta",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="metadata recorded in the ledger entry; repeatable",
    )
    registry_register.set_defaults(handler=_cmd_registry_register)

    registry_revoke = registry_sub.add_parser(
        "revoke", help="durably revoke a buyer's watermark (append-only)"
    )
    registry_revoke.add_argument("vault", type=Path, help="vault directory")
    registry_revoke.add_argument("buyer", help="buyer identifier to revoke")
    registry_revoke.add_argument(
        "--meta",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="metadata recorded in the revocation entry; repeatable",
    )
    registry_revoke.set_defaults(handler=_cmd_registry_revoke)

    registry_attribute = registry_sub.add_parser(
        "attribute",
        help="attribute a leaked token file to the buyers whose watermarks it carries",
    )
    registry_attribute.add_argument("vault", type=Path, help="vault directory")
    registry_attribute.add_argument(
        "suspect", type=Path, help="leaked token file to attribute"
    )
    add_detection_arguments(registry_attribute)
    registry_attribute.set_defaults(handler=_cmd_registry_attribute)

    registry_show = registry_sub.add_parser(
        "show", help="show vault ledger / candidate-index statistics"
    )
    registry_show.add_argument("vault", type=Path, help="vault directory")
    registry_show.set_defaults(handler=_cmd_registry_show)

    experiment = subparsers.add_parser(
        "experiment",
        help="run / report declarative experiment specs (paper reproduction)",
    )
    experiment_sub = experiment.add_subparsers(dest="experiment_command", required=True)

    experiment_run = experiment_sub.add_parser(
        "run", help="execute (or resume) an experiment spec against its run cache"
    )
    experiment_run.add_argument(
        "spec", type=Path, help="experiment spec file (.json or .toml)"
    )
    experiment_run.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="run directory (default: experiment-runs/<spec name>)",
    )
    experiment_run.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes per DAG level (results identical to --workers 1)",
    )
    experiment_run.add_argument(
        "--telemetry",
        default=None,
        metavar="FEATURES",
        help=(
            "telemetry features for the run (comma list of spans,metrics,"
            "profile, or 'all'); overrides FREQYWM_TELEMETRY"
        ),
    )
    add_scheduler_arguments(experiment_run)
    experiment_run.set_defaults(handler=_cmd_experiment_run)

    experiment_report = experiment_sub.add_parser(
        "report", help="re-render the Markdown/JSON report of a finished run"
    )
    experiment_report.add_argument(
        "run_dir", type=Path, help="run directory written by `experiment run`"
    )
    experiment_report.set_defaults(handler=_cmd_experiment_report)

    worker = subparsers.add_parser(
        "worker",
        help="serve scheduler tasks to remote-scheduler clients (docs/scheduler.md)",
    )
    worker.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="listen on a Unix domain socket",
    )
    worker.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP (port 0 picks a free port; the bound address is announced on stderr)",
    )
    worker.add_argument(
        "--import",
        dest="import_modules",
        action="append",
        default=[],
        metavar="MODULE",
        help="import MODULE before serving (registers custom task functions); repeatable",
    )
    worker.add_argument(
        "--max-state",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bound on cached worker-local initializer states (default 8)",
    )
    worker.set_defaults(handler=_cmd_worker)

    stats = subparsers.add_parser(
        "stats",
        help="fetch a detection server's metrics (Prometheus text or JSON)",
    )
    stats.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "connect to a running `freqywm serve --socket PATH`; when omitted "
            "a private stdio server is spawned (useful only for smoke tests)"
        ),
    )
    stats.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format (default prometheus text 0.0.4)",
    )
    stats.set_defaults(handler=_cmd_stats)

    trace = subparsers.add_parser(
        "trace",
        help="inspect trace spans recorded by telemetry-enabled runs",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="render the span tree / per-phase breakdown of a run directory",
    )
    trace_report.add_argument(
        "run_dir",
        type=Path,
        help="run directory (or spans.jsonl file) written with spans enabled",
    )
    trace_report.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="render the full tree only up to N spans (default 200)",
    )
    trace_report.set_defaults(handler=_cmd_trace_report)

    synth = subparsers.add_parser("synth", help="generate a synthetic power-law token file")
    synth.add_argument("output", type=Path, help="token file to write")
    synth.add_argument("--alpha", type=float, default=0.5, help="power-law skewness")
    synth.add_argument("--tokens", type=int, default=1000, help="number of distinct tokens")
    synth.add_argument("--size", type=int, default=100_000, help="total occurrences")
    synth.add_argument("--seed", type=int, default=None, help="seed for reproducible runs")
    synth.set_defaults(handler=_cmd_synth)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.log is not None:
            level, format_name = parse_log_env(args.log)
            configure_logging(level, format_name, force=True)
        else:
            configure_logging()
        return int(args.handler(args))
    except BrokenPipeError:  # stdout piped into a closed pager/head
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)  # noqa: T201
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
