"""Render a finished experiment run into paper-mapped Markdown + JSON.

The report layer is a *pure renderer*: it reads the manifest and the
analysis artifacts of a run directory and lays them out as the tables
the paper reports — the robustness-vs-attack-strength sweep (Figures 4
and 5, Section V), the false-positive curve (Section III-B4) and the
baseline distortion comparison (Section IV-D / Figure 3). No wall-clock
values enter the rendered output, so reports are bit-identical across
reruns and worker counts; timings stay in ``run_log.json`` and the
per-artifact ``seconds`` fields.

It also renders :class:`repro.attacks.evaluation.RobustnessReport`
records (per-attack timings + detector-cache stats) for the interactive
evaluator harness, so the two robustness paths share one table style.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.cache import RunCache
from repro.experiments.executor import load_artifacts

#: Columns of the robustness table, in render order.
_ROBUSTNESS_COLUMNS = (
    "dataset",
    "secret_index",
    "attack",
    "strength",
    "threshold",
    "repetitions",
    "mean_accepted_fraction",
    "detected_rate",
    "detected",
)

_FPR_COLUMNS = (
    "threshold",
    "pairs",
    "required_pairs",
    "exact_probability",
    "markov_bound",
    "empirical_rate",
)

_BASELINE_COLUMNS = (
    "dataset",
    "method",
    "similarity_percent",
    "distortion_percent",
    "rank_changes",
    "ranking_preserved",
    "tokens_changed",
)

_ATTRIBUTION_COLUMNS = (
    "vault_size",
    "mode",
    "candidates",
    "screened_fraction",
    "matched_buyers",
    "attributed",
    "linear_parity",
)

_WATERMARK_COLUMNS = (
    "dataset",
    "secret_index",
    "selected_pairs",
    "similarity_percent",
    "distortion_percent",
    "total_changes",
)


def _format_cell(value: object, digits: int = 6) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    *,
    digits: int = 6,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(no rows)*"
    header = "| " + " | ".join(columns) + " |"
    rule = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| "
        + " | ".join(_format_cell(row.get(column, ""), digits) for column in columns)
        + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])


# --------------------------------------------------------------------------- #
# Section extraction
# --------------------------------------------------------------------------- #


def _watermark_rows(
    manifest: Mapping[str, object], artifacts: Mapping[str, Mapping[str, object]]
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in manifest["tasks"]:  # type: ignore[union-attr]
        if entry["kind"] != "embed":  # type: ignore[index]
            continue
        artifact = artifacts.get(str(entry["task_id"]))  # type: ignore[index]
        if artifact is None:
            continue
        dataset = str(entry["params"]["dataset"])  # type: ignore[index]
        for index, record in enumerate(artifact["result"]["results"]):  # type: ignore[index]
            summary = dict(record["summary"])
            rows.append(
                {
                    "dataset": dataset,
                    "secret_index": index,
                    "selected_pairs": summary.get("selected_pairs"),
                    "similarity_percent": summary.get("similarity_percent"),
                    "distortion_percent": summary.get("distortion_percent"),
                    "total_changes": summary.get("total_changes"),
                }
            )
    rows.sort(key=lambda row: (str(row["dataset"]), int(row["secret_index"])))
    return rows


def _analysis_result(
    artifacts: Mapping[str, Mapping[str, object]], task_id: str
) -> Optional[Dict[str, object]]:
    artifact = artifacts.get(task_id)
    if artifact is None:
        return None
    return dict(artifact["result"])  # type: ignore[arg-type]


def _fpr_sections(
    artifacts: Mapping[str, Mapping[str, object]],
) -> List[Tuple[str, List[Dict[str, object]]]]:
    sections: List[Tuple[str, List[Dict[str, object]]]] = []
    for task_id in sorted(artifacts):
        if not task_id.startswith("analysis:fpr:"):
            continue
        result = dict(artifacts[task_id]["result"])  # type: ignore[arg-type]
        label = f"{result['dataset']} / secret {result['secret_index']}"
        sections.append((label, [dict(row) for row in result["rows"]]))  # type: ignore[union-attr]
    return sections


def _attribution_sections(
    artifacts: Mapping[str, Mapping[str, object]],
) -> List[Tuple[str, List[Dict[str, object]]]]:
    sections: List[Tuple[str, List[Dict[str, object]]]] = []
    for task_id in sorted(artifacts):
        if not task_id.startswith("analysis:attribution:"):
            continue
        result = dict(artifacts[task_id]["result"])  # type: ignore[arg-type]
        label = f"{result['dataset']} (threshold {result['threshold']})"
        sections.append((label, [dict(row) for row in result["rows"]]))  # type: ignore[union-attr]
    return sections


def build_report(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Assemble the deterministic JSON report of a finished run."""
    cache = RunCache(run_dir)
    manifest = cache.read_manifest()
    artifacts = load_artifacts(run_dir)
    spec = dict(manifest["spec"])  # type: ignore[arg-type]
    report: Dict[str, object] = {
        "experiment": spec.get("name"),
        "description": spec.get("description"),
        "spec_fingerprint": manifest["spec_fingerprint"],
        "seed": manifest["seed"],
        "watermarks": _watermark_rows(manifest, artifacts),
    }
    robustness = _analysis_result(artifacts, "analysis:robustness")
    if robustness is not None:
        report["robustness"] = robustness["rows"]
    fpr_sections = _fpr_sections(artifacts)
    if fpr_sections:
        report["fpr_curve"] = {label: rows for label, rows in fpr_sections}
    baselines = _analysis_result(artifacts, "analysis:baselines")
    if baselines is not None:
        report["baseline_comparison"] = baselines["rows"]
    attribution_sections = _attribution_sections(artifacts)
    if attribution_sections:
        report["attribution"] = {label: rows for label, rows in attribution_sections}
    return report


def render_markdown(report: Mapping[str, object]) -> str:
    """Render the JSON report as the paper-mapped markdown document."""
    lines: List[str] = [
        f"# Experiment report: {report['experiment']}",
        "",
    ]
    description = str(report.get("description") or "").strip()
    if description:
        lines += [description, ""]
    lines += [
        f"- spec fingerprint: `{report['spec_fingerprint']}`",
        f"- seed: {report['seed']}",
        "",
        "## Embedded watermarks",
        "",
        markdown_table(report.get("watermarks", ()), _WATERMARK_COLUMNS),  # type: ignore[arg-type]
        "",
    ]
    if "robustness" in report:
        lines += [
            "## Robustness vs attack strength (paper Section V, Figures 4–5)",
            "",
            markdown_table(report["robustness"], _ROBUSTNESS_COLUMNS),  # type: ignore[arg-type]
            "",
        ]
    if "fpr_curve" in report:
        lines += ["## False-positive curve (paper Section III-B4)", ""]
        for label, rows in report["fpr_curve"].items():  # type: ignore[union-attr]
            lines += [f"### {label}", "", markdown_table(rows, _FPR_COLUMNS), ""]
    if "baseline_comparison" in report:
        lines += [
            "## Baseline comparison (paper Section IV-D, Figure 3)",
            "",
            markdown_table(report["baseline_comparison"], _BASELINE_COLUMNS),  # type: ignore[arg-type]
            "",
        ]
    if "attribution" in report:
        lines += [
            "## Leak attribution at scale (marketplace workflow, Section III-C)",
            "",
        ]
        for label, rows in report["attribution"].items():  # type: ignore[union-attr]
            lines += [f"### {label}", "", markdown_table(rows, _ATTRIBUTION_COLUMNS), ""]
    return "\n".join(lines)


def write_report(
    run_dir: Union[str, Path],
    report: Optional[Mapping[str, object]] = None,
) -> Tuple[Path, Path]:
    """Render and persist ``report.json`` + ``report.md`` into the run dir.

    Returns the two written paths. Output depends only on the cached
    artifacts, so repeated calls are byte-identical. Callers that already
    hold a :func:`build_report` payload may pass it as ``report`` to skip
    re-reading every artifact.
    """
    run_dir = Path(run_dir)
    if report is None:
        report = build_report(run_dir)
    json_path = run_dir / "report.json"
    md_path = run_dir / "report.md"
    json_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    md_path.write_text(render_markdown(report) + "\n", encoding="utf-8")
    return json_path, md_path


# --------------------------------------------------------------------------- #
# RobustnessEvaluator records (the interactive attack-suite harness)
# --------------------------------------------------------------------------- #


def render_evaluator_records(records: Sequence[Mapping[str, object]]) -> str:
    """Markdown table for :meth:`RobustnessReport.records` rows.

    The evaluator emits one row per attack family with its wall-clock
    seconds and the shared detector-cache counters, so harness users see
    where evaluation time goes and that detectors are constructed once.
    """
    return markdown_table(
        records,
        (
            "attack_family",
            "seconds",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
        ),
        digits=4,
    )


__all__ = [
    "build_report",
    "markdown_table",
    "render_evaluator_records",
    "render_markdown",
    "write_report",
]
