"""Experiment orchestration: declarative, resumable, sharded reproduction.

This package turns the library's fast primitives (batched embedding,
vectorized detection, sharded pools, cached detectors) into a
first-class experiment runner:

* :mod:`repro.experiments.spec` — declarative :class:`ExperimentSpec`
  (JSON/TOML loadable) describing a grid sweep;
* :mod:`repro.experiments.plan` — pure planner expanding a spec into a
  DAG of content-addressed tasks;
* :mod:`repro.experiments.cache` — on-disk run cache keyed by task
  fingerprint (resume + zero-work reruns);
* :mod:`repro.experiments.tasks` — pure task functions over the batched
  primitives, RNG-keyed by task fingerprint (worker-count parity);
* :mod:`repro.experiments.executor` — level-parallel executor with
  worker-process sharding;
* :mod:`repro.experiments.report` — paper-mapped Markdown + JSON
  rendering of finished runs.

Bundled specs reproducing the paper's evaluation live in
``experiments/specs/`` at the repository root; the CLI surface is
``freqywm experiment run SPEC --workers N`` and
``freqywm experiment report RUN_DIR`` (see ``docs/experiments.md``).
"""

from repro.experiments.cache import CacheError, RunCache
from repro.experiments.executor import (
    ExperimentRunner,
    RunResult,
    load_artifacts,
    run_experiment,
)
from repro.experiments.plan import ExperimentPlan, Task, build_plan, validate_plan
from repro.experiments.report import build_report, render_markdown, write_report
from repro.experiments.spec import (
    AttackSpec,
    DatasetSpec,
    ExperimentSpec,
    load_spec,
)

__all__ = [
    "AttackSpec",
    "CacheError",
    "DatasetSpec",
    "ExperimentPlan",
    "ExperimentRunner",
    "ExperimentSpec",
    "RunCache",
    "RunResult",
    "Task",
    "build_plan",
    "build_report",
    "load_artifacts",
    "load_spec",
    "render_markdown",
    "run_experiment",
    "validate_plan",
    "write_report",
]
