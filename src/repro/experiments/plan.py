"""Expand an :class:`ExperimentSpec` into a DAG of cacheable tasks.

The planner is pure: it never touches data or randomness, it only lays
out *what* has to run and how results flow. Each task carries a
content-addressed fingerprint — a SHA-256 over its kind, its parameters,
the root seed and its dependencies' fingerprints — so two plans share a
fingerprint exactly when the task would compute the same artifact. The
run cache keys on that fingerprint, which is what makes interrupted runs
resumable and repeated runs free (see :mod:`repro.experiments.cache`).

Task kinds and their dataflow::

    dataset ──► embed ──► attack ──► detect ──► analysis:robustness
                  │                    ▲
                  ├────────────────────┘ (no-attack row)
                  ├──► analysis:fpr
                  ├──► analysis:attribution (vault-scaling sweep)
                  └──► analysis:distortion ──► analysis:baselines
    dataset ──► baseline ─────────────────────┘
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.spec import ExperimentSpec

#: Bumping this invalidates every cached artifact (task semantics change).
TASK_VERSION = 1

#: Task kinds in scheduling order (informational; the DAG is authoritative).
TASK_KINDS = (
    "dataset",
    "embed",
    "attack",
    "detect",
    "baseline",
    "analysis",
)


@dataclass(frozen=True)
class Task:
    """One node of the experiment DAG.

    Attributes
    ----------
    task_id:
        Human-readable unique id (``kind:...`` path), stable across runs.
    kind:
        One of :data:`TASK_KINDS`.
    params:
        JSON-able parameters fully describing the computation (together
        with the dependency artifacts and the derived RNG stream).
    deps:
        ``task_id`` s of the dependencies whose artifacts this task reads.
    fingerprint:
        Content hash over ``(version, seed, kind, params, dep
        fingerprints)`` — the run-cache key.
    """

    task_id: str
    kind: str
    params: Mapping[str, object]
    deps: Tuple[str, ...]
    fingerprint: str


def task_fingerprint(
    kind: str,
    params: Mapping[str, object],
    dep_fingerprints: Tuple[str, ...],
    seed: int,
) -> str:
    """The content-addressed cache key of one task."""
    payload = json.dumps(
        {
            "version": TASK_VERSION,
            "seed": seed,
            "kind": kind,
            "params": params,
            "deps": list(dep_fingerprints),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentPlan:
    """The expanded DAG, in a valid topological order."""

    spec_fingerprint: str
    seed: int
    tasks: Tuple[Task, ...]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def by_id(self) -> Dict[str, Task]:
        return {task.task_id: task for task in self.tasks}

    def of_kind(self, kind: str) -> Tuple[Task, ...]:
        return tuple(task for task in self.tasks if task.kind == kind)

    def counts(self) -> Dict[str, int]:
        """Number of planned tasks per kind (stable key order)."""
        counts: Dict[str, int] = {}
        for kind in TASK_KINDS:
            n = sum(1 for task in self.tasks if task.kind == kind)
            if n:
                counts[kind] = n
        return counts

    def levels(self) -> List[List[Task]]:
        """Tasks grouped by DAG depth — each level only depends on earlier ones.

        The executor runs one level at a time, fanning its tasks out
        across workers; within a level tasks are independent by
        construction.
        """
        depth: Dict[str, int] = {}
        for task in self.tasks:  # topological order ⇒ deps already placed
            depth[task.task_id] = (
                1 + max((depth[dep] for dep in task.deps), default=-1)
            )
        grouped: Dict[int, List[Task]] = {}
        for task in self.tasks:
            grouped.setdefault(depth[task.task_id], []).append(task)
        return [grouped[level] for level in sorted(grouped)]


class _PlanBuilder:
    """Accumulates tasks, wiring fingerprints through dependencies."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.tasks: List[Task] = []
        self._fingerprints: Dict[str, str] = {}

    def add(
        self,
        task_id: str,
        kind: str,
        params: Mapping[str, object],
        deps: Tuple[str, ...] = (),
    ) -> str:
        if task_id in self._fingerprints:
            raise ConfigurationError(f"duplicate task id {task_id!r}")
        missing = [dep for dep in deps if dep not in self._fingerprints]
        if missing:
            raise ConfigurationError(
                f"task {task_id!r} depends on unplanned task(s) {missing}"
            )
        fingerprint = task_fingerprint(
            kind,
            params,
            tuple(self._fingerprints[dep] for dep in deps),
            self.seed,
        )
        self.tasks.append(
            Task(
                task_id=task_id,
                kind=kind,
                params=dict(params),
                deps=tuple(deps),
                fingerprint=fingerprint,
            )
        )
        self._fingerprints[task_id] = fingerprint
        return task_id


def build_plan(spec: ExperimentSpec) -> ExperimentPlan:
    """Expand ``spec`` into its full task DAG (deterministic ordering)."""
    builder = _PlanBuilder(spec.seed)
    generation = spec.generation_config()
    generation_params = {
        "budget_percent": generation.budget_percent,
        "modulus_cap": generation.modulus_cap,
        "strategy": generation.strategy,
        "max_pairs": generation.max_pairs,
    }
    detection_params = {
        "thresholds": list(spec.thresholds),
        "min_accepted_fraction": spec.min_accepted_fraction,
    }

    detect_ids: List[str] = []
    distortion_ids: List[str] = []
    baseline_ids: List[str] = []

    for dataset in spec.datasets:
        dataset_id = builder.add(
            f"dataset:{dataset.name}", "dataset", dataset.to_dict()
        )

        embed_id = builder.add(
            f"embed:{dataset.name}",
            "embed",
            {
                "dataset": dataset.name,
                "secrets": spec.secrets_per_dataset,
                "generation": generation_params,
            },
            deps=(dataset_id,),
        )

        for secret_index in range(spec.secrets_per_dataset):
            # The un-attacked detection row: every robustness table needs
            # the baseline "watermark verifies on its own output" curve.
            detect_ids.append(
                builder.add(
                    f"detect:{dataset.name}:s{secret_index}:none",
                    "detect",
                    {
                        "dataset": dataset.name,
                        "secret_index": secret_index,
                        "attack": "none",
                        "strength": 0.0,
                        **detection_params,
                    },
                    deps=(embed_id,),
                )
            )
            for attack_index, attack in enumerate(spec.attacks):
                for strength in attack.strengths:
                    # repr(strength) (not %g) keeps ids collision-free for
                    # any two distinct floats; the attack entry index keeps
                    # two entries of the same kind (e.g. differing only in
                    # repetitions) apart.
                    cell = f"{attack.kind}.{attack_index}:{strength!r}"
                    attack_id = builder.add(
                        f"attack:{dataset.name}:s{secret_index}:{cell}",
                        "attack",
                        {
                            "dataset": dataset.name,
                            "secret_index": secret_index,
                            "attack": attack.kind,
                            "strength": strength,
                            "repetitions": attack.repetitions,
                        },
                        deps=(embed_id,),
                    )
                    detect_ids.append(
                        builder.add(
                            f"detect:{dataset.name}:s{secret_index}:{cell}",
                            "detect",
                            {
                                "dataset": dataset.name,
                                "secret_index": secret_index,
                                "attack": attack.kind,
                                "strength": strength,
                                **detection_params,
                            },
                            deps=(attack_id, embed_id),
                        )
                    )

            if "fpr_curve" in spec.analyses:
                # FPR tasks have no downstream summary: the report layer
                # renders each one's rows directly.
                builder.add(
                    f"analysis:fpr:{dataset.name}:s{secret_index}",
                    "analysis",
                    {
                        "analysis": "fpr_curve",
                        "dataset": dataset.name,
                        "secret_index": secret_index,
                        "thresholds": list(spec.thresholds),
                        "min_accepted_fraction": spec.min_accepted_fraction,
                        "trials": spec.fpr_trials,
                    },
                    deps=(embed_id,),
                )

            if "attribution" in spec.analyses and secret_index == 0:
                # One vault-scaling sweep per dataset: all of the
                # dataset's embedded secrets become registered buyers, so
                # the task depends on the whole embed batch; the leaked
                # copy is always secret 0's.
                builder.add(
                    f"analysis:attribution:{dataset.name}",
                    "analysis",
                    {
                        "analysis": "attribution",
                        "dataset": dataset.name,
                        "vault_sizes": list(spec.attribution_vault_sizes),
                        "threshold": spec.thresholds[0],
                        "min_accepted_fraction": spec.min_accepted_fraction,
                    },
                    deps=(dataset_id, embed_id),
                )

            if "distortion" in spec.analyses or "baselines" in spec.analyses:
                distortion_ids.append(
                    builder.add(
                        f"analysis:distortion:{dataset.name}:s{secret_index}",
                        "analysis",
                        {
                            "analysis": "distortion",
                            "dataset": dataset.name,
                            "secret_index": secret_index,
                        },
                        deps=(dataset_id, embed_id),
                    )
                )

        if "baselines" in spec.analyses:
            for method in spec.baselines:
                baseline_ids.append(
                    builder.add(
                        f"baseline:{dataset.name}:{method}",
                        "baseline",
                        {"dataset": dataset.name, "method": method},
                        deps=(dataset_id,),
                    )
                )

    if "robustness" in spec.analyses:
        builder.add(
            "analysis:robustness",
            "analysis",
            {"analysis": "robustness"},
            deps=tuple(detect_ids),
        )
    if "baselines" in spec.analyses:
        builder.add(
            "analysis:baselines",
            "analysis",
            {"analysis": "baselines"},
            deps=tuple(distortion_ids) + tuple(baseline_ids),
        )

    return ExperimentPlan(
        spec_fingerprint=spec.fingerprint(),
        seed=spec.seed,
        tasks=tuple(builder.tasks),
    )


def validate_plan(plan: ExperimentPlan) -> None:
    """Sanity-check DAG invariants (used by tests and the executor)."""
    seen: Dict[str, Task] = {}
    for task in plan.tasks:
        if task.task_id in seen:
            raise ConfigurationError(f"duplicate task id {task.task_id!r}")
        for dep in task.deps:
            if dep not in seen:
                raise ConfigurationError(
                    f"task {task.task_id!r} depends on {dep!r} which is not "
                    "planned before it"
                )
        expected = task_fingerprint(
            task.kind,
            task.params,
            tuple(seen[dep].fingerprint for dep in task.deps),
            plan.seed,
        )
        if expected != task.fingerprint:
            raise ConfigurationError(
                f"task {task.task_id!r} carries a stale fingerprint"
            )
        seen[task.task_id] = task


__all__ = [
    "TASK_KINDS",
    "TASK_VERSION",
    "ExperimentPlan",
    "Task",
    "build_plan",
    "task_fingerprint",
    "validate_plan",
]
