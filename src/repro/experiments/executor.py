"""Resumable, sharded execution of an experiment DAG.

The executor walks the plan level by level (every level only depends on
earlier levels), skipping tasks whose fingerprint already has an artifact
in the run cache and handing the remainder to a
:class:`~repro.exec.scheduler.Scheduler`. Because every task draws its
randomness from a stream keyed by its own fingerprint
(:func:`repro.experiments.tasks.task_rng`), the artifacts — and therefore
the rendered reports — are bit-identical regardless of worker count,
scheduler backend or completion order.

Execution is configured by an :class:`~repro.exec.policy.ExecutionPolicy`:
the default ``workers=1`` never spawns anything, a local pool that fails
to start (restricted sandboxes) falls back to in-process execution with a
logged warning rather than failing the run, and
``ExecutionPolicy(scheduler="remote", addresses=...)`` fans the same plan
out to ``freqywm worker`` processes.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.exec.blobs import dataplane_enabled, maybe_blob
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs
from repro.exec.scheduler import TaskSpec, create_scheduler, register_task_function
from repro.experiments.cache import RunCache
from repro.experiments.plan import Task, build_plan, validate_plan
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tasks import execute_task
from repro.obs.logging import get_logger, log_record
from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import (
    configure_telemetry,
    enabled_features,
    metrics_active,
    span as trace_span,
    spans_active,
    tracer,
)
from repro.obs.report import SPANS_RELPATH

logger = get_logger(__name__)

#: Per-run metrics/trace summary written next to the manifest.
TELEMETRY_RELPATH = "telemetry.json"


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``run_experiment`` invocation.

    ``executed`` / ``cached`` count tasks per kind; a repeated run of an
    unchanged spec has ``executed == {}`` — every artifact is served from
    the content-addressed cache.
    """

    run_dir: Path
    spec_fingerprint: str
    workers: int
    executed: Dict[str, int] = field(default_factory=dict)
    cached: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    bytes_sent: int = 0
    bytes_deduped: int = 0
    shm_segments: int = 0

    @property
    def executed_total(self) -> int:
        return sum(self.executed.values())

    @property
    def cached_total(self) -> int:
        return sum(self.cached.values())

    def summary(self) -> Dict[str, object]:
        """Flat summary for the CLI and the run log."""
        return {
            "run_dir": str(self.run_dir),
            "spec_fingerprint": self.spec_fingerprint,
            "workers": self.workers,
            "executed": dict(self.executed),
            "cached": dict(self.cached),
            "executed_total": self.executed_total,
            "cached_total": self.cached_total,
            "seconds": round(self.seconds, 3),
            "bytes_sent": self.bytes_sent,
            "bytes_deduped": self.bytes_deduped,
            "shm_segments": self.shm_segments,
        }


def _run_one(args: Tuple[Task, Dict[str, Dict[str, object]], int]):
    """Scheduler worker: execute one task and time it."""
    task, deps, seed = args
    start = time.perf_counter()
    result = execute_task(task, deps, seed)
    return task.task_id, result, time.perf_counter() - start


def _experiment_task(_state: object, payload):
    """Registered scheduler task wrapping :func:`_run_one` (stateless)."""
    return _run_one(payload)


register_task_function("experiment.task", _experiment_task)


class ExperimentRunner:
    """Drives one experiment plan to completion against a run cache."""

    def __init__(
        self,
        spec: ExperimentSpec,
        run_dir: Union[str, Path],
        *,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        exec_policy = policy_from_kwargs(
            policy,
            workers=workers,
            start_method=start_method,
            caller="ExperimentRunner",
        )
        if exec_policy.scheduler == "local" and exec_policy.workers is None:
            # The runner's historical default is sequential execution,
            # not all-cores (sweeps are often cache-bound, not CPU-bound).
            exec_policy = exec_policy.merged(workers=1)
        if exec_policy.telemetry is not None:
            # The policy beats the environment, mirroring how the CLI's
            # --telemetry flag beats FREQYWM_TELEMETRY.
            configure_telemetry(exec_policy.telemetry)
        self.spec = spec
        self.policy = exec_policy
        self.start_method = exec_policy.start_method
        self.plan = build_plan(spec)
        validate_plan(self.plan)
        self.cache = RunCache(run_dir)
        # size_to_batch: each level gets a pool sized to its pending jobs
        # and closed at the level barrier, exactly like the old per-level
        # multiprocessing pools.
        self._scheduler = create_scheduler(
            exec_policy,
            size_to_batch=True,
            on_spawn_failure=self._spawn_failure,
        )
        self.workers = self._scheduler.workers

    # ------------------------------------------------------------------ #

    def _spawn_failure(self, error: BaseException) -> None:
        """Keep the historical warning text on pool-startup fallback."""
        log_record(
            logger,
            logging.WARNING,
            "experiment worker pool unavailable; running level in-process "
            f"({type(error).__name__}: {error})",
            error=str(error),
            error_type=type(error).__name__,
        )
        warnings.warn(
            f"experiment worker pool unavailable ({error}); running in-process",
            RuntimeWarning,
            stacklevel=2,
        )

    def close(self) -> None:
        """Release the underlying scheduler (idempotent)."""
        self._scheduler.close()

    def run(self) -> RunResult:
        """Execute (or resume) the plan; returns executed/cached counters.

        With telemetry enabled the whole run becomes one trace: an
        ``experiment.run`` root span, one ``experiment.level`` span per
        plan level, and (transitively) the scheduler/task spans beneath
        them. Spans stream to ``telemetry/spans.jsonl`` under the run
        directory and a ``telemetry.json`` summary is written at the
        end — both consumed by ``freqywm trace report`` and
        ``tools/check_telemetry.py``.
        """
        if spans_active():
            # Earlier runs in this process already streamed their spans
            # to their own sinks; drain so the flush-on-attach behavior
            # of set_sink cannot leak them into this run's file.
            tracer().drain()
            tracer().set_sink(Path(self.cache.run_dir) / SPANS_RELPATH)
        try:
            with trace_span(
                "experiment.run",
                attributes={
                    "spec": self.plan.spec_fingerprint,
                    "workers": self._scheduler.workers,
                    "scheduler": self.policy.scheduler,
                },
            ):
                outcome = self._run_plan()
            if spans_active() or metrics_active():
                self._write_telemetry(outcome)
        finally:
            if spans_active():
                tracer().set_sink(None)
        return outcome

    def _write_telemetry(self, outcome: RunResult) -> None:
        """Write the per-run ``telemetry.json`` summary artifact."""
        payload: Dict[str, object] = {
            "features": sorted(enabled_features()),
            "run": outcome.summary(),
        }
        if metrics_active():
            payload["metrics"] = metrics_registry().snapshot()
        if spans_active():
            payload["spans"] = {
                "path": SPANS_RELPATH,
                "buffered": tracer().buffered,
                "dropped": tracer().dropped,
            }
        path = Path(self.cache.run_dir) / TELEMETRY_RELPATH
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )

    def _run_plan(self) -> RunResult:
        """The traced body of :meth:`run` (level loop and bookkeeping)."""
        started = time.perf_counter()
        self.cache.write_manifest(self.plan, self.spec.to_dict())
        results: Dict[str, Dict[str, object]] = {}
        executed: Dict[str, int] = {}
        cached: Dict[str, int] = {}
        # Results may be delivered from scheduler client threads (remote
        # backend); the cache and counters are guarded accordingly.
        lock = threading.Lock()
        use_blobs = dataplane_enabled() and self._scheduler.ships_payloads
        # Dependency artifacts are shared by every downstream task in a
        # level, so each is blobbed at most once per run; the memo holds
        # (replacement, refs) keyed by the dep's task id.
        dep_blobs: Dict[str, Tuple[object, Tuple[str, ...]]] = {}

        def dep_value(dep: str) -> Tuple[object, Tuple[str, ...]]:
            if dep not in dep_blobs:
                dep_blobs[dep] = maybe_blob(results[dep])
            return dep_blobs[dep]

        for index, level in enumerate(self.plan.levels()):
            pending: List[Task] = []
            for task in level:
                if self.cache.has(task.fingerprint):
                    cached[task.kind] = cached.get(task.kind, 0) + 1
                    results[task.task_id] = self.cache.load_result(task.fingerprint)
                else:
                    pending.append(task)
            if not pending:
                continue
            by_id = {task.task_id: task for task in pending}
            specs = []
            for task in pending:
                deps: Dict[str, object] = {}
                refs: Tuple[str, ...] = ()
                for dep in task.deps:
                    if use_blobs:
                        value, dep_refs = dep_value(dep)
                        refs += dep_refs
                    else:
                        value = results[dep]
                    deps[dep] = value
                specs.append(
                    TaskSpec(
                        fingerprint=task.fingerprint,
                        function="experiment.task",
                        payload=(task, deps, self.plan.seed),
                        blob_refs=refs,
                    )
                )

            def handle(_index: int, value) -> None:
                # Streamed as tasks complete, not at the level barrier: an
                # interrupted sharded run then resumes at task granularity,
                # as cache.py documents.
                task_id, result, seconds = value
                task = by_id[task_id]
                with lock:
                    self.cache.store(task, result, seconds=seconds)
                    results[task_id] = dict(result)
                    executed[task.kind] = executed.get(task.kind, 0) + 1

            with trace_span(
                "experiment.level",
                attributes={"level": index, "tasks": len(pending)},
            ):
                self._scheduler.run(specs, on_result=handle)

        stats = self._scheduler.stats
        outcome = RunResult(
            run_dir=self.cache.run_dir,
            spec_fingerprint=self.plan.spec_fingerprint,
            workers=self._scheduler.workers,
            executed=executed,
            cached=cached,
            seconds=time.perf_counter() - started,
            bytes_sent=stats.bytes_sent,
            bytes_deduped=stats.bytes_deduped,
            shm_segments=stats.shm_segments,
        )
        self.cache.write_run_log(outcome.summary())
        return outcome


def run_experiment(
    spec: ExperimentSpec,
    run_dir: Union[str, Path],
    *,
    policy: Optional[ExecutionPolicy] = None,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
) -> RunResult:
    """Plan, execute (or resume) and log one experiment run."""
    runner = ExperimentRunner(
        spec, run_dir, policy=policy, workers=workers, start_method=start_method
    )
    try:
        return runner.run()
    finally:
        runner.close()


def load_artifacts(run_dir: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Artifacts of a finished run, keyed by ``task_id`` (via the manifest)."""
    cache = RunCache(run_dir)
    manifest = cache.read_manifest()
    artifacts: Dict[str, Dict[str, object]] = {}
    for entry in manifest["tasks"]:  # type: ignore[union-attr]
        fingerprint = str(entry["fingerprint"])  # type: ignore[index]
        if cache.has(fingerprint):
            artifacts[str(entry["task_id"])] = cache.load(fingerprint)  # type: ignore[index]
    return artifacts


__all__ = [
    "TELEMETRY_RELPATH",
    "ExperimentRunner",
    "RunResult",
    "load_artifacts",
    "run_experiment",
]
