"""Resumable, sharded execution of an experiment DAG.

The executor walks the plan level by level (every level only depends on
earlier levels), skipping tasks whose fingerprint already has an artifact
in the run cache and fanning the remainder out across worker processes.
Because every task draws its randomness from a stream keyed by its own
fingerprint (:func:`repro.experiments.tasks.task_rng`), the artifacts —
and therefore the rendered reports — are bit-identical regardless of
worker count or scheduling order.

Process pools mirror the library's sharding layers: ``workers=1`` never
spawns anything, and a pool that fails to start (restricted sandboxes)
falls back to in-process execution with a logged warning rather than
failing the run.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.experiments.cache import RunCache
from repro.experiments.plan import Task, build_plan, validate_plan
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tasks import execute_task

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``run_experiment`` invocation.

    ``executed`` / ``cached`` count tasks per kind; a repeated run of an
    unchanged spec has ``executed == {}`` — every artifact is served from
    the content-addressed cache.
    """

    run_dir: Path
    spec_fingerprint: str
    workers: int
    executed: Dict[str, int] = field(default_factory=dict)
    cached: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def executed_total(self) -> int:
        return sum(self.executed.values())

    @property
    def cached_total(self) -> int:
        return sum(self.cached.values())

    def summary(self) -> Dict[str, object]:
        """Flat summary for the CLI and the run log."""
        return {
            "run_dir": str(self.run_dir),
            "spec_fingerprint": self.spec_fingerprint,
            "workers": self.workers,
            "executed": dict(self.executed),
            "cached": dict(self.cached),
            "executed_total": self.executed_total,
            "cached_total": self.cached_total,
            "seconds": round(self.seconds, 3),
        }


def _run_one(args: Tuple[Task, Dict[str, Dict[str, object]], int]):
    """Pool worker: execute one task and time it."""
    task, deps, seed = args
    start = time.perf_counter()
    result = execute_task(task, deps, seed)
    return task.task_id, result, time.perf_counter() - start


class ExperimentRunner:
    """Drives one experiment plan to completion against a run cache."""

    def __init__(
        self,
        spec: ExperimentSpec,
        run_dir: Union[str, Path],
        *,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.start_method = start_method
        self.plan = build_plan(spec)
        validate_plan(self.plan)
        self.cache = RunCache(run_dir)

    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        """Execute (or resume) the plan; returns executed/cached counters."""
        started = time.perf_counter()
        self.cache.write_manifest(self.plan, self.spec.to_dict())
        results: Dict[str, Dict[str, object]] = {}
        executed: Dict[str, int] = {}
        cached: Dict[str, int] = {}

        for level in self.plan.levels():
            pending: List[Task] = []
            for task in level:
                if self.cache.has(task.fingerprint):
                    cached[task.kind] = cached.get(task.kind, 0) + 1
                    results[task.task_id] = self.cache.load_result(task.fingerprint)
                else:
                    pending.append(task)
            if not pending:
                continue
            jobs = [
                (
                    task,
                    {dep: results[dep] for dep in task.deps},
                    self.plan.seed,
                )
                for task in pending
            ]
            for task, result, seconds in self._execute(jobs):
                self.cache.store(task, result, seconds=seconds)
                results[task.task_id] = dict(result)
                executed[task.kind] = executed.get(task.kind, 0) + 1

        outcome = RunResult(
            run_dir=self.cache.run_dir,
            spec_fingerprint=self.plan.spec_fingerprint,
            workers=self.workers,
            executed=executed,
            cached=cached,
            seconds=time.perf_counter() - started,
        )
        self.cache.write_run_log(outcome.summary())
        return outcome

    # ------------------------------------------------------------------ #

    def _execute(self, jobs):
        """Run one level's pending jobs, sharded when workers > 1.

        Yields ``(task, result, seconds)`` tuples. Output order within a
        level does not matter for correctness (tasks in a level are
        independent) but is kept deterministic anyway by mapping in job
        order.
        """
        by_id = {task.task_id: task for task, _deps, _seed in jobs}
        if self.workers > 1 and len(jobs) > 1:
            # Only pool *startup* is allowed to fall back to in-process
            # execution (restricted sandboxes, mirroring the sharding
            # pools); a task failing inside a worker propagates as-is so
            # it is never misdiagnosed as an environment problem.
            pool = None
            try:
                context = (
                    multiprocessing.get_context(self.start_method)
                    if self.start_method
                    else multiprocessing.get_context()
                )
                pool = context.Pool(processes=min(self.workers, len(jobs)))
            except (OSError, RuntimeError, PermissionError) as error:
                logger.warning(
                    "experiment worker pool unavailable (%s); running level "
                    "in-process",
                    error,
                )
                warnings.warn(
                    f"experiment worker pool unavailable ({error}); "
                    "running in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if pool is not None:
                with pool:
                    # imap_unordered so finished tasks reach the caller —
                    # and the on-disk cache — as they complete, not at the
                    # level barrier: an interrupted sharded run then
                    # resumes at task granularity, as cache.py documents.
                    for task_id, result, seconds in pool.imap_unordered(
                        _run_one, jobs
                    ):
                        yield by_id[task_id], result, seconds
                return
        for job in jobs:
            task_id, result, seconds = _run_one(job)
            yield by_id[task_id], result, seconds


def run_experiment(
    spec: ExperimentSpec,
    run_dir: Union[str, Path],
    *,
    workers: int = 1,
    start_method: Optional[str] = None,
) -> RunResult:
    """Plan, execute (or resume) and log one experiment run."""
    runner = ExperimentRunner(
        spec, run_dir, workers=workers, start_method=start_method
    )
    return runner.run()


def load_artifacts(run_dir: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Artifacts of a finished run, keyed by ``task_id`` (via the manifest)."""
    cache = RunCache(run_dir)
    manifest = cache.read_manifest()
    artifacts: Dict[str, Dict[str, object]] = {}
    for entry in manifest["tasks"]:  # type: ignore[union-attr]
        fingerprint = str(entry["fingerprint"])  # type: ignore[index]
        if cache.has(fingerprint):
            artifacts[str(entry["task_id"])] = cache.load(fingerprint)  # type: ignore[index]
    return artifacts


__all__ = [
    "ExperimentRunner",
    "RunResult",
    "load_artifacts",
    "run_experiment",
]
