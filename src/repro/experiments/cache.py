"""Content-addressed on-disk run cache.

A run directory looks like::

    RUN_DIR/
      manifest.json            # spec + spec fingerprint + task table
      run_log.json             # executed/cached counters of the last run
      report.md / report.json  # rendered by repro.experiments.report
      artifacts/
        <task fingerprint>.json

Artifacts are keyed purely by the task fingerprint (kind + params + seed
+ dependency fingerprints), so:

* an interrupted run resumes exactly where it stopped — finished tasks
  are found by fingerprint and never recomputed;
* an immediately repeated run performs zero task executions;
* editing a spec invalidates only the downstream subtree of the change —
  untouched datasets/embeddings are reused byte-for-byte.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write never
leaves a corrupt artifact that would poison a resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.exceptions import ReproError
from repro.experiments.plan import ExperimentPlan, Task


class CacheError(ReproError):
    """A run-cache artifact is missing or unreadable."""


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically within its directory."""
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(text, encoding="utf-8")
    os.replace(temp, path)


class RunCache:
    """Artifact store of one experiment run directory."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        # No directories are created here: read-only operations (report
        # rendering, artifact loading) must not leave stray directories
        # behind a mistyped path. The write paths mkdir on demand.
        self.run_dir = Path(run_dir)
        self.artifact_dir = self.run_dir / "artifacts"

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #

    def _artifact_path(self, fingerprint: str) -> Path:
        return self.artifact_dir / f"{fingerprint}.json"

    def has(self, fingerprint: str) -> bool:
        """Whether a finished artifact exists for ``fingerprint``."""
        return self._artifact_path(fingerprint).exists()

    def store(
        self,
        task: Task,
        result: Mapping[str, object],
        *,
        seconds: float = 0.0,
    ) -> None:
        """Persist one finished task's record (atomic)."""
        record = {
            "task_id": task.task_id,
            "kind": task.kind,
            "fingerprint": task.fingerprint,
            "params": dict(task.params),
            "seconds": round(seconds, 6),
            "result": dict(result),
        }
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self._artifact_path(task.fingerprint),
            json.dumps(record, sort_keys=True) + "\n",
        )

    def load(self, fingerprint: str) -> Dict[str, object]:
        """Load one artifact record; raises :class:`CacheError` if absent."""
        path = self._artifact_path(fingerprint)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CacheError(f"no cached artifact for fingerprint {fingerprint}") from None
        except json.JSONDecodeError as error:
            raise CacheError(f"corrupt artifact {path.name}: {error}") from None
        if record.get("fingerprint") != fingerprint:
            raise CacheError(
                f"artifact {path.name} does not match its fingerprint key"
            )
        return record

    def load_result(self, fingerprint: str) -> Dict[str, object]:
        """The ``result`` payload of one artifact."""
        return dict(self.load(fingerprint)["result"])  # type: ignore[arg-type]

    def fingerprints(self) -> Iterable[str]:
        """Fingerprints of every stored artifact."""
        if not self.artifact_dir.is_dir():
            return []
        return sorted(path.stem for path in self.artifact_dir.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Manifest / run log
    # ------------------------------------------------------------------ #

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    @property
    def run_log_path(self) -> Path:
        return self.run_dir / "run_log.json"

    def write_manifest(
        self, plan: ExperimentPlan, spec_payload: Mapping[str, object]
    ) -> None:
        """Record the spec and the task table of the latest run."""
        manifest = {
            "spec": dict(spec_payload),
            "spec_fingerprint": plan.spec_fingerprint,
            "seed": plan.seed,
            "tasks": [
                {
                    "task_id": task.task_id,
                    "kind": task.kind,
                    "fingerprint": task.fingerprint,
                    "deps": list(task.deps),
                    "params": dict(task.params),
                }
                for task in plan.tasks
            ],
        }
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )

    def read_manifest(self) -> Dict[str, object]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CacheError(
                f"{self.run_dir} has no manifest.json — not an experiment run "
                "directory (run `freqywm experiment run` first)"
            ) from None

    def write_run_log(self, log: Mapping[str, object]) -> None:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.run_log_path, json.dumps(dict(log), indent=2, sort_keys=True) + "\n"
        )

    def read_run_log(self) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.run_log_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None


__all__ = ["CacheError", "RunCache"]
