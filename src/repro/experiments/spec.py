"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes one reproduction of (a slice of) the
paper's evaluation as a *grid sweep*: synthetic datasets × embedded
secrets × attack families with swept strengths × detection thresholds ×
analysis layers. Specs are plain frozen dataclasses, loadable from JSON
or TOML files, and every spec has a stable SHA-256 fingerprint so runs
are content-addressed end to end (see :mod:`repro.experiments.cache`).

The schema is deliberately small — it only names things the rest of the
library already knows how to do — and strictly validated at construction
time, so a typo in a spec file fails before any task runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from repro.core.config import DetectionConfig, GenerationConfig
from repro.exceptions import ConfigurationError

#: Known dataset generators (see :mod:`repro.datasets.synthetic`).
DATASET_KINDS = ("power-law", "uniform")
#: Known attack families (see :mod:`repro.attacks`). ``strength`` means a
#: sampling fraction for ``sampling`` and a noise percentage for the
#: ``reordering`` / ``percentage`` destroy attacks; ``boundary`` draws
#: full-slack noise and takes no strength knob.
ATTACK_KINDS = ("sampling", "reordering", "percentage", "boundary")
#: Analysis layers a spec may request. ``attribution`` reproduces the
#: marketplace workflow: it scales a :class:`~repro.dispute.registry.
#: WatermarkRegistry` vault with decoy buyers and checks that the leaked
#: watermarked dataset is attributed to its buyer through the sublinear
#: candidate index (see ``docs/registry.md``).
ANALYSIS_KINDS = ("robustness", "fpr_curve", "distortion", "baselines", "attribution")
#: Baseline comparators from :mod:`repro.baselines`.
BASELINE_METHODS = ("wm-obt", "wm-rvs")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic input dataset of the sweep.

    ``power-law`` datasets follow the paper's Section V workload (skewness
    ``alpha``, ``tokens`` distinct tokens, ``samples`` total occurrences,
    multinomially sampled); ``uniform`` builds the degenerate flat
    histogram where FreqyWM cannot embed (negative-control runs).
    """

    name: str
    kind: str = "power-law"
    alpha: float = 0.5
    tokens: int = 120
    samples: int = 60_000

    def __post_init__(self) -> None:
        _require(bool(self.name), "dataset name must be non-empty")
        _require(
            self.name == _slug(self.name),
            f"dataset name must be a slug ([a-z0-9._-]), got {self.name!r}",
        )
        _require(
            self.kind in DATASET_KINDS,
            f"dataset kind must be one of {DATASET_KINDS}, got {self.kind!r}",
        )
        _require(self.alpha >= 0.0, f"alpha must be >= 0, got {self.alpha}")
        _require(self.tokens >= 2, f"tokens must be >= 2, got {self.tokens}")
        _require(self.samples >= self.tokens, "samples must be >= tokens")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "alpha": self.alpha,
            "tokens": self.tokens,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DatasetSpec":
        _check_keys("dataset", payload, {"name", "kind", "alpha", "tokens", "samples"})
        return cls(
            name=str(_required_key("dataset", payload, "name")),
            kind=str(payload.get("kind", "power-law")),
            alpha=float(payload.get("alpha", 0.5)),
            tokens=int(payload.get("tokens", 120)),
            samples=int(payload.get("samples", 60_000)),
        )


@dataclass(frozen=True)
class AttackSpec:
    """One attack family with a swept strength axis.

    Every ``(strength, repetition)`` cell becomes its own cacheable attack
    task; detection then screens all repetitions of a cell in one
    vectorized ``detect_many`` batch.
    """

    kind: str
    strengths: Tuple[float, ...] = (1.0,)
    repetitions: int = 1

    def __post_init__(self) -> None:
        _require(
            self.kind in ATTACK_KINDS,
            f"attack kind must be one of {ATTACK_KINDS}, got {self.kind!r}",
        )
        _require(len(self.strengths) > 0, "attack strengths must be non-empty")
        _require(self.repetitions >= 1, "attack repetitions must be >= 1")
        for strength in self.strengths:
            if self.kind == "sampling":
                _require(
                    0.0 < strength <= 1.0,
                    f"sampling strengths are fractions in (0, 1], got {strength}",
                )
            else:
                _require(
                    strength >= 0.0,
                    f"attack strength must be >= 0, got {strength}",
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "strengths": list(self.strengths),
            "repetitions": self.repetitions,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AttackSpec":
        _check_keys("attack", payload, {"kind", "strengths", "repetitions"})
        raw = payload.get("strengths", [1.0])
        if not isinstance(raw, (list, tuple)):
            raise ConfigurationError("attack strengths must be a list of numbers")
        return cls(
            kind=str(_required_key("attack", payload, "kind")),
            strengths=tuple(float(value) for value in raw),
            repetitions=int(payload.get("repetitions", 1)),
        )


_SLUG_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789._-")


def _slug(value: str) -> str:
    return "".join(char for char in value.lower() if char in _SLUG_ALLOWED)


def _check_keys(
    section: str, payload: Mapping[str, object], allowed: set
) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown {section} spec field(s): {', '.join(sorted(map(str, unknown)))}"
        )


def _required_key(section: str, payload: Mapping[str, object], key: str) -> object:
    try:
        return payload[key]
    except KeyError:
        raise ConfigurationError(
            f"{section} spec is missing required field {key!r}"
        ) from None


def _exact_int(field_name: str, value: object) -> int:
    """Coerce a spec number to int, rejecting fractional values.

    ``int(1.5)`` would silently truncate a typo to a different sweep
    point; integral floats (``2.0``, as JSON/TOML sometimes render
    integers) are accepted.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{field_name} must be an integer, got {value!r}")
    if float(value) != int(value):
        raise ConfigurationError(f"{field_name} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """A full declarative experiment: the grid plus its analysis layers.

    Attributes
    ----------
    name:
        Slug naming the experiment (also the default run-directory name).
    seed:
        Root seed. Every task derives its own independent RNG stream from
        ``(seed, task fingerprint)`` via :func:`repro.utils.rng.derive_rng`,
        so results are bit-identical regardless of worker count or
        execution order.
    datasets:
        The input datasets of the sweep.
    generation:
        ``WM_Generate`` parameters shared by every embedding.
    secrets_per_dataset:
        Independent watermarks embedded per dataset (one batched
        ``generate_many`` pass per dataset).
    attacks:
        Attack families swept against every embedded watermark. A
        no-attack detection row is always included.
    thresholds:
        Detection threshold sweep (the paper's ``t`` axis).
    min_accepted_fraction:
        The ``k`` knob, as a fraction of stored pairs.
    analyses:
        Analysis layers to run (subset of :data:`ANALYSIS_KINDS`).
    baselines:
        Comparators for the ``baselines`` analysis.
    fpr_trials:
        Monte-Carlo trials for the empirical column of the FPR curve.
    attribution_vault_sizes:
        Vault sizes (registered buyers, real + decoy) swept by the
        ``attribution`` analysis.
    """

    name: str
    description: str = ""
    seed: int = 0
    datasets: Tuple[DatasetSpec, ...] = ()
    generation: Mapping[str, object] = field(default_factory=dict)
    secrets_per_dataset: int = 1
    attacks: Tuple[AttackSpec, ...] = ()
    thresholds: Tuple[int, ...] = (0, 1, 2, 4)
    min_accepted_fraction: float = 0.5
    analyses: Tuple[str, ...] = ("robustness",)
    baselines: Tuple[str, ...] = BASELINE_METHODS
    fpr_trials: int = 2000
    attribution_vault_sizes: Tuple[int, ...] = (16, 64, 256)

    def __post_init__(self) -> None:
        _require(bool(self.name), "experiment name must be non-empty")
        _require(
            self.name == _slug(self.name),
            f"experiment name must be a slug ([a-z0-9._-]), got {self.name!r}",
        )
        _require(len(self.datasets) > 0, "spec must declare at least one dataset")
        names = [dataset.name for dataset in self.datasets]
        _require(len(set(names)) == len(names), "dataset names must be unique")
        _require(
            self.secrets_per_dataset >= 1,
            f"secrets_per_dataset must be >= 1, got {self.secrets_per_dataset}",
        )
        _require(len(self.thresholds) > 0, "thresholds must be non-empty")
        for threshold in self.thresholds:
            _require(
                isinstance(threshold, int) and threshold >= 0,
                f"thresholds must be non-negative integers, got {threshold!r}",
            )
        _require(
            len(set(self.thresholds)) == len(self.thresholds),
            "thresholds must be unique",
        )
        _require(
            0.0 <= self.min_accepted_fraction <= 1.0,
            "min_accepted_fraction must lie in [0, 1]",
        )
        _require(len(self.analyses) > 0, "spec must request at least one analysis")
        for analysis in self.analyses:
            _require(
                analysis in ANALYSIS_KINDS,
                f"analysis must be one of {ANALYSIS_KINDS}, got {analysis!r}",
            )
        for method in self.baselines:
            _require(
                method in BASELINE_METHODS,
                f"baseline must be one of {BASELINE_METHODS}, got {method!r}",
            )
        _require(self.fpr_trials >= 1, "fpr_trials must be >= 1")
        _require(
            len(self.attribution_vault_sizes) > 0,
            "attribution_vault_sizes must be non-empty",
        )
        for size in self.attribution_vault_sizes:
            _require(
                isinstance(size, int) and size >= 1,
                f"attribution_vault_sizes must be positive integers, got {size!r}",
            )
        _require(
            len(set(self.attribution_vault_sizes))
            == len(self.attribution_vault_sizes),
            "attribution_vault_sizes must be unique",
        )
        # Fail early on bad generation parameters, not inside a worker.
        self.generation_config()

    # ------------------------------------------------------------------ #
    # Resolved configurations
    # ------------------------------------------------------------------ #

    def generation_config(self) -> GenerationConfig:
        """The resolved :class:`GenerationConfig` shared by every embed."""
        payload = dict(self.generation)
        _check_keys(
            "generation",
            payload,
            {"budget_percent", "modulus_cap", "strategy", "max_pairs"},
        )
        kwargs: Dict[str, object] = {}
        if "budget_percent" in payload:
            kwargs["budget_percent"] = float(payload["budget_percent"])
        if "modulus_cap" in payload:
            kwargs["modulus_cap"] = int(payload["modulus_cap"])
        if "strategy" in payload:
            kwargs["strategy"] = str(payload["strategy"])
        if "max_pairs" in payload and payload["max_pairs"] is not None:
            kwargs["max_pairs"] = int(payload["max_pairs"])
        return GenerationConfig(**kwargs)  # type: ignore[arg-type]

    def detection_config(self, threshold: int) -> DetectionConfig:
        """The resolved :class:`DetectionConfig` for one sweep threshold."""
        return DetectionConfig(
            pair_threshold=threshold,
            min_accepted_fraction=self.min_accepted_fraction,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-able representation (the fingerprint input)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "datasets": [dataset.to_dict() for dataset in self.datasets],
            "generation": dict(self.generation),
            "secrets_per_dataset": self.secrets_per_dataset,
            "attacks": [attack.to_dict() for attack in self.attacks],
            "thresholds": list(self.thresholds),
            "min_accepted_fraction": self.min_accepted_fraction,
            "analyses": list(self.analyses),
            "baselines": list(self.baselines),
            "fpr_trials": self.fpr_trials,
            "attribution_vault_sizes": list(self.attribution_vault_sizes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        _check_keys(
            "experiment",
            payload,
            {
                "name",
                "description",
                "seed",
                "datasets",
                "generation",
                "secrets_per_dataset",
                "attacks",
                "thresholds",
                "min_accepted_fraction",
                "analyses",
                "baselines",
                "fpr_trials",
                "attribution_vault_sizes",
            },
        )
        datasets_raw = payload.get("datasets", [])
        attacks_raw = payload.get("attacks", [])
        if not isinstance(datasets_raw, (list, tuple)):
            raise ConfigurationError("datasets must be a list of dataset tables")
        if not isinstance(attacks_raw, (list, tuple)):
            raise ConfigurationError("attacks must be a list of attack tables")
        return cls(
            name=str(payload.get("name", "")),
            description=str(payload.get("description", "")),
            seed=int(payload.get("seed", 0)),
            datasets=tuple(DatasetSpec.from_dict(entry) for entry in datasets_raw),
            generation=dict(payload.get("generation", {})),  # type: ignore[arg-type]
            secrets_per_dataset=int(payload.get("secrets_per_dataset", 1)),
            attacks=tuple(AttackSpec.from_dict(entry) for entry in attacks_raw),
            thresholds=tuple(
                _exact_int("thresholds", value)
                for value in payload.get("thresholds", (0, 1, 2, 4))  # type: ignore[union-attr]
            ),
            min_accepted_fraction=float(payload.get("min_accepted_fraction", 0.5)),
            analyses=tuple(str(value) for value in payload.get("analyses", ("robustness",))),  # type: ignore[union-attr]
            baselines=tuple(str(value) for value in payload.get("baselines", BASELINE_METHODS)),  # type: ignore[union-attr]
            fpr_trials=int(payload.get("fpr_trials", 2000)),
            attribution_vault_sizes=tuple(
                _exact_int("attribution_vault_sizes", value)
                for value in payload.get("attribution_vault_sizes", (16, 64, 256))  # type: ignore[union-attr]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec file; the suffix picks the parser (JSON or TOML)."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            import tomllib

            payload = tomllib.loads(path.read_text(encoding="utf-8"))
            return cls.from_dict(payload)
        return cls.from_json(path.read_text(encoding="utf-8"))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def fingerprint(self) -> str:
        """Content hash of the spec (stable across field ordering)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Module-level convenience mirroring :meth:`ExperimentSpec.load`."""
    return ExperimentSpec.load(path)


__all__ = [
    "ANALYSIS_KINDS",
    "ATTACK_KINDS",
    "BASELINE_METHODS",
    "DATASET_KINDS",
    "AttackSpec",
    "DatasetSpec",
    "ExperimentSpec",
    "load_spec",
]
