"""Pure task functions: one experiment DAG node → one JSON-able record.

Every function here is a *pure* function of ``(task, dependency results,
root seed)``: no global state, no wall clock in the payload, and every
random draw comes from an RNG stream derived from the task's
content-addressed fingerprint via :func:`repro.utils.rng.derive_rng`.
That last property is what makes experiment runs bit-identical across
``--workers 1`` and ``--workers N`` — the stream a task consumes depends
only on *what* it computes, never on *when* or *where* it runs.

The heavy lifting is delegated to the library's batched primitives:
embedding runs through :meth:`WatermarkGenerator.generate_many`,
detection screens all attack repetitions of a cell in one vectorized
:func:`repro.core.batch.detect_many` pass.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.analysis.distortion import distortion_report
from repro.analysis.false_positive import (
    empirical_false_positive_rate,
    markov_bound,
    pair_false_positive_probability,
    poisson_binomial_survival,
)
from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    ReorderingNoiseAttack,
)
from repro.attacks.sampling import SamplingAttack, rescale_suspect
from repro.baselines import WmObtWatermarker, WmRvsWatermarker
from repro.core.batch import detect_many
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.generator import WatermarkGenerator
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_histogram, uniform_histogram
from repro.exceptions import ReproError
from repro.experiments.plan import Task
from repro.utils.rng import derive_rng


def task_rng(seed: int, fingerprint: str, *labels: str):
    """The derived RNG stream of one task (optionally a sub-stream).

    Keyed by the task fingerprint, so the stream is independent of every
    other task's and of the execution schedule — the reproducibility
    contract behind ``--workers N`` parity.
    """
    return derive_rng(seed, "experiment-task", fingerprint, *labels)


def _histogram(counts: Mapping[str, object]) -> TokenHistogram:
    return TokenHistogram.from_counts(
        {str(token): int(count) for token, count in counts.items()}  # type: ignore[call-overload]
    )


def _dep_of_kind(
    task: Task, deps: Mapping[str, Mapping[str, object]], kind_prefix: str
) -> Dict[str, object]:
    for dep_id in task.deps:
        if dep_id.startswith(kind_prefix):
            return dict(deps[dep_id])
    raise ReproError(f"task {task.task_id!r} has no {kind_prefix!r} dependency")


# --------------------------------------------------------------------------- #
# Grid tasks
# --------------------------------------------------------------------------- #


def run_dataset_task(task: Task, seed: int) -> Dict[str, object]:
    """Materialise one synthetic input dataset as a histogram."""
    params = task.params
    kind = str(params["kind"])
    if kind == "power-law":
        histogram = generate_power_law_histogram(
            float(params["alpha"]),  # type: ignore[arg-type]
            n_tokens=int(params["tokens"]),  # type: ignore[arg-type]
            sample_size=int(params["samples"]),  # type: ignore[arg-type]
            mode="sampled",
            rng=task_rng(seed, task.fingerprint),
        )
    elif kind == "uniform":
        tokens = int(params["tokens"])  # type: ignore[arg-type]
        histogram = uniform_histogram(
            n_tokens=tokens,
            count_per_token=max(1, int(params["samples"]) // tokens),  # type: ignore[arg-type]
        )
    else:  # pragma: no cover - spec validation rejects unknown kinds
        raise ReproError(f"unknown dataset kind {kind!r}")
    return {
        "counts": histogram.as_dict(),
        "distinct_tokens": len(histogram),
        "total_count": histogram.total_count(),
    }


def run_embed_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Embed ``secrets`` independent watermarks into one dataset.

    All copies go through one batched ``generate_many`` pass, which
    amortises the pair-modulus hashing and eligibility precomputation
    across the whole batch (PR 4's embedding engine).
    """
    dataset = _dep_of_kind(task, deps, "dataset:")
    histogram = _histogram(dataset["counts"])  # type: ignore[arg-type]
    generation = dict(task.params["generation"])  # type: ignore[call-overload]
    config = GenerationConfig(
        budget_percent=float(generation["budget_percent"]),
        modulus_cap=int(generation["modulus_cap"]),
        strategy=str(generation["strategy"]),
        max_pairs=(
            int(generation["max_pairs"])
            if generation.get("max_pairs") is not None
            else None
        ),
    )
    copies = int(task.params["secrets"])  # type: ignore[arg-type]
    generator = WatermarkGenerator(config, rng=task_rng(seed, task.fingerprint))
    results = generator.generate_many([histogram] * copies)
    records: List[Dict[str, object]] = []
    for result in results:
        summary = result.summary()
        summary.pop("generation_seconds", None)  # wall clock is not content
        records.append(
            {
                "watermarked_counts": result.watermarked_histogram.as_dict(),
                "secret": result.secret.to_dict(),
                "summary": summary,
            }
        )
    return {"results": records}


_DESTROY_ATTACKS = {
    "reordering": ReorderingNoiseAttack,
    "percentage": PercentageNoiseAttack,
}


def run_attack_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Tamper one watermarked copy ``repetitions`` times at one strength."""
    embed = _dep_of_kind(task, deps, "embed:")
    secret_index = int(task.params["secret_index"])  # type: ignore[arg-type]
    record = embed["results"][secret_index]  # type: ignore[index]
    watermarked = _histogram(record["watermarked_counts"])
    kind = str(task.params["attack"])
    strength = float(task.params["strength"])  # type: ignore[arg-type]
    repetitions = int(task.params["repetitions"])  # type: ignore[arg-type]
    attacked: List[Dict[str, int]] = []
    for repetition in range(repetitions):
        rng = task_rng(seed, task.fingerprint, f"rep-{repetition}")
        if kind == "sampling":
            suspect = SamplingAttack(strength, rng=rng).tamper(watermarked)
            # Owner-side counter-measure: rescale back to the known size.
            suspect = rescale_suspect(suspect, watermarked.total_count())
        elif kind == "boundary":
            suspect = BoundaryNoiseAttack(rng=rng).tamper(watermarked)
        elif kind in _DESTROY_ATTACKS:
            suspect = _DESTROY_ATTACKS[kind](strength, rng=rng).tamper(watermarked)
        else:  # pragma: no cover - spec validation rejects unknown kinds
            raise ReproError(f"unknown attack kind {kind!r}")
        attacked.append(suspect.as_dict())
    return {"attacked_counts": attacked}


def run_detect_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Screen one (attack, strength) cell over the threshold sweep.

    All repetitions are screened per threshold in one vectorized
    ``detect_many`` batch; the record aggregates them into the mean
    verified-pair fraction and the majority detection verdict the paper's
    robustness figures plot.
    """
    embed = _dep_of_kind(task, deps, "embed:")
    secret_index = int(task.params["secret_index"])  # type: ignore[arg-type]
    record = embed["results"][secret_index]  # type: ignore[index]
    secret = WatermarkSecret.from_dict(record["secret"])
    if str(task.params["attack"]) == "none":
        suspects = [_histogram(record["watermarked_counts"])]
    else:
        attack = _dep_of_kind(task, deps, "attack:")
        suspects = [
            _histogram(counts)
            for counts in attack["attacked_counts"]  # type: ignore[union-attr]
        ]
    thresholds = [int(value) for value in task.params["thresholds"]]  # type: ignore[union-attr]
    min_fraction = float(task.params["min_accepted_fraction"])  # type: ignore[arg-type]
    rows: List[Dict[str, object]] = []
    base_detector: "WatermarkDetector | None" = None
    for threshold in thresholds:
        config = DetectionConfig(
            pair_threshold=threshold, min_accepted_fraction=min_fraction
        )
        if len(secret.pairs) == 0:
            rows.append(
                {
                    "threshold": threshold,
                    "repetitions": len(suspects),
                    "total_pairs": 0,
                    "required_pairs": 0,
                    "mean_accepted_pairs": 0.0,
                    "mean_accepted_fraction": 0.0,
                    "detected_rate": 0.0,
                    "detected": False,
                }
            )
            continue
        # The moduli are derived once for the whole sweep; every further
        # threshold reuses them through `reconfigured`.
        if base_detector is None:
            base_detector = WatermarkDetector(secret, config)
            detector = base_detector
        else:
            detector = base_detector.reconfigured(config)
        report = detect_many(suspects, detector=detector)
        fractions = [result.accepted_fraction for result in report]
        votes = [result.accepted for result in report]
        rows.append(
            {
                "threshold": threshold,
                "repetitions": len(suspects),
                "total_pairs": len(secret.pairs),
                "required_pairs": config.required_pairs(len(secret.pairs)),
                "mean_accepted_pairs": float(
                    np.mean([result.accepted_pairs for result in report])
                ),
                "mean_accepted_fraction": float(np.mean(fractions)),
                "detected_rate": float(np.mean(votes)),
                "detected": bool(np.mean(votes) >= 0.5),
            }
        )
    return {
        "dataset": task.params["dataset"],
        "secret_index": secret_index,
        "attack": task.params["attack"],
        "strength": task.params["strength"],
        "rows": rows,
    }


def run_baseline_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Embed one comparator watermark and profile its distortion."""
    dataset = _dep_of_kind(task, deps, "dataset:")
    counts = {str(token): int(count) for token, count in dataset["counts"].items()}  # type: ignore[union-attr]
    method = str(task.params["method"])
    if method == "wm-obt":
        watermarker = WmObtWatermarker(rng=task_rng(seed, task.fingerprint))
        result = watermarker.embed(counts)
        watermarked = result.watermarked_counts
        extra: Dict[str, object] = {
            "bit_recovery_rate": watermarker.bit_recovery_rate(watermarked, result)
        }
    elif method == "wm-rvs":
        watermarker = WmRvsWatermarker()
        result = watermarker.embed(counts)
        watermarked = result.watermarked_counts
        extra = {"detection_score": watermarker.detect(watermarked)}
    else:  # pragma: no cover - spec validation rejects unknown methods
        raise ReproError(f"unknown baseline method {method!r}")
    profile = distortion_report(counts, watermarked, method=method)
    return {
        "dataset": task.params["dataset"],
        "method": method,
        "distortion": profile.as_dict(),
        **extra,
    }


# --------------------------------------------------------------------------- #
# Analysis tasks
# --------------------------------------------------------------------------- #


def run_fpr_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """False-positive behaviour of one embedded secret's actual moduli.

    Cross-checks three estimates per threshold, exactly as Section III-B4
    lays them out: the exact Poisson-Binomial survival function (DFT), the
    Markov bound, and a Monte-Carlo simulation of detection on random
    unwatermarked remainders.
    """
    embed = _dep_of_kind(task, deps, "embed:")
    secret_index = int(task.params["secret_index"])  # type: ignore[arg-type]
    record = embed["results"][secret_index]  # type: ignore[index]
    secret = WatermarkSecret.from_dict(record["secret"])
    thresholds = [int(value) for value in task.params["thresholds"]]  # type: ignore[union-attr]
    min_fraction = float(task.params["min_accepted_fraction"])  # type: ignore[arg-type]
    trials = int(task.params["trials"])  # type: ignore[arg-type]
    moduli = _secret_moduli(secret)
    usable = [modulus for modulus in moduli if modulus >= 2]
    rows: List[Dict[str, object]] = []
    for threshold in thresholds:
        if not usable:
            rows.append({"threshold": threshold, "pairs": 0})
            continue
        probabilities = [
            pair_false_positive_probability(modulus, threshold) for modulus in usable
        ]
        config = DetectionConfig(
            pair_threshold=threshold, min_accepted_fraction=min_fraction
        )
        required = config.required_pairs(len(usable))
        empirical = empirical_false_positive_rate(
            usable,
            threshold,
            required,
            trials=trials,
            rng=task_rng(seed, task.fingerprint, f"mc-{threshold}"),
        )
        rows.append(
            {
                "threshold": threshold,
                "pairs": len(usable),
                "required_pairs": required,
                "exact_probability": poisson_binomial_survival(probabilities, required),
                "markov_bound": markov_bound(probabilities, required),
                "empirical_rate": empirical,
                "trials": trials,
            }
        )
    return {
        "dataset": task.params["dataset"],
        "secret_index": secret_index,
        "rows": rows,
    }


def _secret_moduli(secret: WatermarkSecret) -> List[int]:
    cache = PairModulusCache(secret.secret, secret.modulus_cap)
    return [cache.modulus(pair.first, pair.second) for pair in secret.pairs]


def run_distortion_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Distortion profile of one FreqyWM embedding vs its original."""
    dataset = _dep_of_kind(task, deps, "dataset:")
    embed = _dep_of_kind(task, deps, "embed:")
    secret_index = int(task.params["secret_index"])  # type: ignore[arg-type]
    record = embed["results"][secret_index]  # type: ignore[index]
    original = {str(token): int(count) for token, count in dataset["counts"].items()}  # type: ignore[union-attr]
    watermarked = {
        str(token): int(count)
        for token, count in record["watermarked_counts"].items()
    }
    profile = distortion_report(original, watermarked, method="freqywm")
    return {
        "dataset": task.params["dataset"],
        "secret_index": secret_index,
        "distortion": profile.as_dict(),
        "selected_pairs": record["summary"]["selected_pairs"],
    }


def run_attribution_task(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Marketplace attribution at a sweep of vault sizes (docs/registry.md).

    Every embedded secret of the dataset becomes a registered buyer; the
    vault is then padded with synthetic decoy buyers up to each swept
    size. Secret 0's watermarked copy plays the leaked dataset, and each
    row records how the candidate index screened the vault — mode,
    candidates vs active secrets — plus whether attribution recovered
    exactly the real buyers a full linear ``detect_many_secrets`` scan
    convicts (the parity column is computed, not assumed).
    """
    from repro.core.batch import detect_many_secrets
    from repro.dispute import WatermarkRegistry

    dataset = _dep_of_kind(task, deps, "dataset:")
    embed = _dep_of_kind(task, deps, "embed:")
    vocab = sorted(str(token) for token in dataset["counts"])  # type: ignore[union-attr]
    secrets = [
        WatermarkSecret.from_dict(record["secret"])
        for record in embed["results"]  # type: ignore[union-attr]
    ]
    suspect = _histogram(embed["results"][0]["watermarked_counts"])  # type: ignore[index]
    config = DetectionConfig(
        pair_threshold=int(task.params["threshold"]),  # type: ignore[arg-type]
        min_accepted_fraction=float(task.params["min_accepted_fraction"]),  # type: ignore[arg-type]
    )
    modulus_cap = secrets[0].modulus_cap
    rows: List[Dict[str, object]] = []
    for vault_size in [int(value) for value in task.params["vault_sizes"]]:  # type: ignore[union-attr]
        registry = WatermarkRegistry()
        for index, secret in enumerate(secrets):
            registry.register(f"buyer-{index:05d}", secret)
        rng = task_rng(seed, task.fingerprint, f"vault-{vault_size}")
        for decoy in range(max(0, vault_size - len(secrets))):
            # Decoys pair up a fresh permutation of the vocabulary, so
            # their pairs are distinct tokens the real histogram holds.
            order = rng.permutation(len(vocab))
            pairs = [
                (vocab[order[2 * slot]], vocab[order[2 * slot + 1]])
                for slot in range(min(8, len(vocab) // 2))
            ]
            registry.register(
                f"decoy-{decoy:06d}",
                WatermarkSecret.build(
                    pairs, int(rng.integers(1, 2**63)), modulus_cap
                ),
            )
        matches = registry.attribute_leak(suspect, detection=config)
        stats = registry.last_attribution
        linear = {
            buyer
            for buyer, result in zip(
                registry.active_buyers,
                detect_many_secrets(
                    suspect,
                    [registry.secret_for(buyer) for buyer in registry.active_buyers],
                    config,
                ),
            )
            if result.accepted
        }
        matched = [buyer for buyer, _ in matches]
        rows.append(
            {
                "vault_size": len(registry.active_buyers),
                "mode": stats.mode if stats is not None else "empty",
                "candidates": stats.candidates if stats is not None else 0,
                "screened_fraction": (
                    stats.candidates / stats.active_secrets
                    if stats is not None and stats.active_secrets
                    else 0.0
                ),
                "matched_buyers": len(matched),
                "attributed": "buyer-00000" in matched,
                "linear_parity": set(matched) == linear,
            }
        )
    return {
        "dataset": task.params["dataset"],
        "threshold": int(task.params["threshold"]),  # type: ignore[arg-type]
        "rows": rows,
    }


def run_robustness_summary(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Stack every detect record into the flat robustness table."""
    rows: List[Dict[str, object]] = []
    for dep_id in task.deps:
        detect = dict(deps[dep_id])
        for row in detect["rows"]:  # type: ignore[union-attr]
            rows.append(
                {
                    "dataset": detect["dataset"],
                    "secret_index": detect["secret_index"],
                    "attack": detect["attack"],
                    "strength": detect["strength"],
                    **dict(row),
                }
            )
    rows.sort(
        key=lambda row: (
            str(row["dataset"]),
            int(row["secret_index"]),
            str(row["attack"]),
            float(row["strength"]),
            int(row["threshold"]),
        )
    )
    return {"rows": rows}


def run_baselines_summary(
    task: Task, deps: Mapping[str, Mapping[str, object]], seed: int
) -> Dict[str, object]:
    """Merge FreqyWM distortion rows with the comparator baselines'."""
    rows: List[Dict[str, object]] = []
    for dep_id in task.deps:
        record = dict(deps[dep_id])
        if dep_id.startswith("analysis:distortion:"):
            rows.append(
                {
                    "dataset": record["dataset"],
                    "method": "freqywm",
                    **dict(record["distortion"]),  # type: ignore[call-overload]
                }
            )
        else:  # baseline task
            rows.append(
                {
                    "dataset": record["dataset"],
                    "method": record["method"],
                    **dict(record["distortion"]),  # type: ignore[call-overload]
                }
            )
    rows.sort(key=lambda row: (str(row["dataset"]), str(row["method"])))
    return {"rows": rows}


_ANALYSIS_RUNNERS = {
    "fpr_curve": run_fpr_task,
    "distortion": run_distortion_task,
    "robustness": run_robustness_summary,
    "baselines": run_baselines_summary,
    "attribution": run_attribution_task,
}


def execute_task(
    task: Task,
    deps: Mapping[str, Mapping[str, object]],
    seed: int,
) -> Dict[str, object]:
    """Dispatch one task to its runner. Pure; safe to call in any process."""
    if task.kind == "dataset":
        return run_dataset_task(task, seed)
    if task.kind == "embed":
        return run_embed_task(task, deps, seed)
    if task.kind == "attack":
        return run_attack_task(task, deps, seed)
    if task.kind == "detect":
        return run_detect_task(task, deps, seed)
    if task.kind == "baseline":
        return run_baseline_task(task, deps, seed)
    if task.kind == "analysis":
        runner = _ANALYSIS_RUNNERS.get(str(task.params["analysis"]))
        if runner is None:  # pragma: no cover - spec validation rejects these
            raise ReproError(f"unknown analysis {task.params['analysis']!r}")
        return runner(task, deps, seed)
    raise ReproError(f"unknown task kind {task.kind!r}")  # pragma: no cover


__all__ = [
    "execute_task",
    "run_attack_task",
    "run_attribution_task",
    "run_baseline_task",
    "run_dataset_task",
    "run_detect_task",
    "run_distortion_task",
    "run_embed_task",
    "run_fpr_task",
    "task_rng",
]
