"""Machine-learning substrates used by the Section VI analyses."""

from repro.ml.sequence_model import (
    MarkovSequenceModel,
    SequenceEvaluation,
    accuracy_impact,
    train_test_split_sequences,
)

__all__ = [
    "MarkovSequenceModel",
    "SequenceEvaluation",
    "accuracy_impact",
    "train_test_split_sequences",
]
