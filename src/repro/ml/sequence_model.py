"""Next-URL sequence model — substitute for the paper's LSTM experiment.

Section VI checks whether ten successive watermarks change the accuracy of
a sequence model trained to predict the next URL in a user's browsing
history (the paper: a TensorFlow embedding+LSTM model, 82.33 % before vs
82.34 % after watermarking). TensorFlow is not available offline, so we
substitute the closest dependency-free analogue: an order-``k`` Markov
chain over URLs with back-off to lower orders and finally to the global
URL popularity. Like the LSTM, its predictions are driven by token
co-occurrence statistics, which is exactly the signal a frequency
watermark could plausibly perturb — so the experiment still measures what
the paper wants to measure (does the watermark move model accuracy?).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SequenceEvaluation:
    """Accuracy of a sequence model on a held-out set of transitions."""

    accuracy: float
    evaluated_transitions: int
    top_k: int


class MarkovSequenceModel:
    """Order-``k`` Markov next-token predictor with back-off.

    Training counts the transitions ``context -> next token`` for every
    context length from ``order`` down to 1; prediction uses the longest
    context seen during training and falls back to shorter contexts, then
    to the globally most frequent token.
    """

    def __init__(self, order: int = 2) -> None:
        if order < 1:
            raise ConfigurationError("model order must be at least 1")
        self.order = order
        self._transitions: List[Dict[Tuple[str, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._unigrams: Counter = Counter()
        self._fitted = False

    # ------------------------------------------------------------------ #

    def fit(self, sequences: Sequence[Sequence[str]]) -> "MarkovSequenceModel":
        """Count transitions over a corpus of token sequences."""
        if not sequences:
            raise ConfigurationError("cannot fit a sequence model on an empty corpus")
        for sequence in sequences:
            tokens = [str(token) for token in sequence]
            self._unigrams.update(tokens)
            for index in range(1, len(tokens)):
                target = tokens[index]
                for context_length in range(1, self.order + 1):
                    if index - context_length < 0:
                        break
                    context = tuple(tokens[index - context_length : index])
                    self._transitions[context_length - 1][context][target] += 1
        self._fitted = True
        return self

    def predict(self, context: Sequence[str], *, top_k: int = 1) -> List[str]:
        """Most likely next tokens given ``context`` (longest match wins)."""
        if not self._fitted:
            raise ConfigurationError("the model must be fitted before predicting")
        tokens = [str(token) for token in context]
        for context_length in range(min(self.order, len(tokens)), 0, -1):
            key = tuple(tokens[-context_length:])
            counts = self._transitions[context_length - 1].get(key)
            if counts:
                return [token for token, _count in counts.most_common(top_k)]
        return [token for token, _count in self._unigrams.most_common(top_k)]

    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        sequences: Sequence[Sequence[str]],
        *,
        top_k: int = 1,
    ) -> SequenceEvaluation:
        """Next-token accuracy over every transition in ``sequences``."""
        if not self._fitted:
            raise ConfigurationError("the model must be fitted before evaluating")
        correct = 0
        total = 0
        for sequence in sequences:
            tokens = [str(token) for token in sequence]
            for index in range(1, len(tokens)):
                context = tokens[max(0, index - self.order) : index]
                predictions = self.predict(context, top_k=top_k)
                total += 1
                if tokens[index] in predictions:
                    correct += 1
        accuracy = correct / total if total else 0.0
        return SequenceEvaluation(accuracy=accuracy, evaluated_transitions=total, top_k=top_k)


def train_test_split_sequences(
    sequences: Sequence[Sequence[str]],
    *,
    test_fraction: float = 0.25,
    rng: RngLike = None,
) -> Tuple[List[Sequence[str]], List[Sequence[str]]]:
    """Split sequences into train and test sets by whole sequence."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must lie in (0, 1)")
    generator = ensure_rng(rng)
    indices = list(range(len(sequences)))
    generator.shuffle(indices)
    split = max(1, int(round(test_fraction * len(sequences))))
    test_indices = set(indices[:split])
    train = [sequences[i] for i in range(len(sequences)) if i not in test_indices]
    test = [sequences[i] for i in range(len(sequences)) if i in test_indices]
    if not train:
        train, test = test, train
    return train, test


def accuracy_impact(
    original_sequences: Sequence[Sequence[str]],
    watermarked_sequences: Sequence[Sequence[str]],
    *,
    order: int = 2,
    top_k: int = 3,
    test_fraction: float = 0.25,
    rng: RngLike = None,
) -> Dict[str, float]:
    """Train/evaluate the model on original vs watermarked corpora.

    Returns a report with the two accuracies and their difference — the
    quantity the paper's Section VI accuracy experiment reports.
    """
    generator = ensure_rng(rng)
    report: Dict[str, float] = {}
    for label, corpus in (("original", original_sequences), ("watermarked", watermarked_sequences)):
        train, test = train_test_split_sequences(
            corpus, test_fraction=test_fraction, rng=generator
        )
        model = MarkovSequenceModel(order=order).fit(train)
        evaluation = model.evaluate(test, top_k=top_k)
        report[f"{label}_accuracy"] = evaluation.accuracy
        report[f"{label}_transitions"] = float(evaluation.evaluated_transitions)
    report["accuracy_difference"] = (
        report["watermarked_accuracy"] - report["original_accuracy"]
    )
    return report


__all__ = [
    "SequenceEvaluation",
    "MarkovSequenceModel",
    "train_test_split_sequences",
    "accuracy_impact",
]
