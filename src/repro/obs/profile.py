"""Opt-in slow-task profiling for scheduler tasks.

When the ``profile`` telemetry feature is on, :func:`maybe_profile`
wraps a task body in :mod:`cProfile`. If the task finishes under the
threshold (``FREQYWM_PROFILE_THRESHOLD`` seconds, default 0.25) the
profile is discarded — fast tasks pay only the profiler overhead, never
a serialisation cost. Slow tasks get their top-N cumulative-time frames
attached to the surrounding span as the ``profile`` attribute, so a
``freqywm trace report`` can show *why* the slow span was slow without
anyone re-running under a profiler.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

#: Environment variable holding the slow-task threshold in seconds.
PROFILE_THRESHOLD_ENV = "FREQYWM_PROFILE_THRESHOLD"

#: Default threshold: tasks faster than this are never reported.
DEFAULT_THRESHOLD = 0.25

#: Frames attached to a slow span.
TOP_FRAMES = 10


def profile_threshold() -> float:
    """The configured slow-task threshold in seconds (>= 0)."""
    raw = os.environ.get(PROFILE_THRESHOLD_ENV)
    if not raw:
        return DEFAULT_THRESHOLD
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_THRESHOLD
    return max(0.0, value)


def top_frames(profiler: cProfile.Profile, limit: int = TOP_FRAMES) -> List[dict]:
    """The ``limit`` most expensive frames by cumulative time.

    Each entry is ``{"site", "calls", "total", "cumulative"}`` where
    ``site`` is ``file:line(function)`` with the directory stripped —
    short enough to live inside a span attribute.
    """
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, function), (
        _primitive,
        calls,
        total,
        cumulative,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "site": f"{os.path.basename(filename)}:{line}({function})",
                "calls": calls,
                "total": round(total, 6),
                "cumulative": round(cumulative, 6),
            }
        )
    rows.sort(key=lambda row: row["cumulative"], reverse=True)
    return rows[:limit]


@contextmanager
def maybe_profile(span, enabled: bool, threshold: Optional[float] = None) -> Iterator[None]:
    """Profile the enclosed block and annotate ``span`` when it was slow.

    ``span`` is the active span object (or the shared no-op span when
    tracing is off — attributes set on it vanish, which is fine: the
    profile is only useful attached to a span someone will read). When
    ``enabled`` is false the context manager is free of any profiler
    overhead. The block's exceptions propagate untouched; a block that
    raises after exceeding the threshold still gets its frames recorded.
    """
    if not enabled:
        yield
        return
    limit = profile_threshold() if threshold is None else threshold
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        elapsed = time.perf_counter() - started
        if elapsed >= limit:
            span.set_attribute("profile", top_frames(profiler))
            span.set_attribute("profile_elapsed", round(elapsed, 6))


__all__ = [
    "DEFAULT_THRESHOLD",
    "PROFILE_THRESHOLD_ENV",
    "TOP_FRAMES",
    "maybe_profile",
    "profile_threshold",
    "top_frames",
]
