"""Named counters, gauges and histograms with two exposition formats.

The :class:`MetricsRegistry` unifies what used to be five unrelated
ad-hoc stats objects (``SchedulerStats``, ``ServiceStats``,
``CacheStats``, ``AttributionStats``/``IndexStats``) behind one
queryable surface. The legacy objects stay exactly as they were — their
owners keep mutating plain attributes on the hot path, tests keep
asserting on their fields — and the registry *pulls* them at snapshot
time through registered **views** (weak references, so registering a
stats object never extends its owner's lifetime). New instrumentation
uses the direct primitives:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge`   — last-set value;
* :class:`Histogram` — fixed cumulative buckets plus sum/count, the
  shape Prometheus expects (quantiles are derived offline).

Snapshots come in two forms: :meth:`MetricsRegistry.snapshot` (a plain
JSON-ready dict, written into ``telemetry.json`` and served by the
``stats`` wire verb) and :meth:`MetricsRegistry.render_prometheus`
(the text exposition format, ``freqywm stats --format prometheus``).
All primitives are thread-safe; the sharded schedulers touch them from
client threads.
"""

from __future__ import annotations

import re
import threading
import weakref
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Default latency buckets (seconds): sub-millisecond service hits up
#: through multi-minute experiment levels.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")


def _check_name(name: str) -> str:
    """Validate a metric name (dotted segments of ``[a-zA-Z0-9_]``)."""
    if not _NAME.match(name):
        raise ConfigurationError(
            f"metric name {name!r} must match [a-zA-Z_][a-zA-Z0-9_.]*"
        )
    return name


def _prom_name(name: str) -> str:
    """The Prometheus-exposition form of a dotted metric name."""
    return "freqywm_" + name.replace(".", "_")


class Counter:
    """A monotonically increasing total (thread-safe)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A value that goes up and down; reads return the last set value."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (either sign)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


class Histogram:
    """Fixed cumulative buckets plus sum and count (thread-safe).

    ``buckets`` are upper bounds in ascending order; every observation
    lands in each bucket whose bound is >= the value (the Prometheus
    cumulative convention) with an implicit ``+Inf`` bucket equal to
    ``count``. Percentile estimates interpolate within the first bucket
    whose cumulative count reaches the requested rank — coarse by
    design, bounded memory forever.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be ascending and non-empty"
            )
        self.name = _check_name(name)
        self.help = help_text
        self.bounds: Tuple[float, ...] = tuple(float(bound) for bound in buckets)
        self._counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._sum += value
            self._count += 1
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[position] += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` excluded."""
        with self._lock:
            return list(zip(self.bounds, self._counts))

    def quantile(self, fraction: float) -> float:
        """A bucket-resolution estimate of the given quantile (0..1)."""
        if not 0 <= fraction <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {fraction}")
        with self._lock:
            if not self._count:
                return 0.0
            rank = fraction * self._count
            for bound, cumulative in zip(self.bounds, self._counts):
                if cumulative >= rank:
                    return bound
            return self.bounds[-1]


#: A view pulls ``{field: value}`` out of a live legacy stats object.
ViewExtractor = Callable[[object], Mapping[str, object]]


def _default_extract(target: object) -> Mapping[str, object]:
    """Extract fields via ``as_dict()`` when present, else ``__dict__``."""
    as_dict = getattr(target, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    return {
        key: value
        for key, value in vars(target).items()
        if not key.startswith("_")
    }


class MetricsRegistry:
    """Process-wide home of every metric and legacy-stats view."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._views: Dict[str, List[Tuple[weakref.ref, ViewExtractor]]] = {}

    # -------------------------------------------------------------- #
    # Primitives (get-or-create; a name never changes kind)
    # -------------------------------------------------------------- #

    def _get_or_create(self, table: Dict, name: str, factory) -> object:
        with self._lock:
            existing = table.get(name)
            if existing is not None:
                return existing
            for other in (self._counters, self._gauges, self._histograms):
                if other is not table and name in other:
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"different kind"
                    )
            metric = factory()
            table[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get-or-create the named :class:`Counter`."""
        return self._get_or_create(
            self._counters, name, lambda: Counter(name, help_text)
        )  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get-or-create the named :class:`Gauge`."""
        return self._get_or_create(
            self._gauges, name, lambda: Gauge(name, help_text)
        )  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create the named :class:`Histogram`."""
        return self._get_or_create(
            self._histograms, name, lambda: Histogram(name, help_text, buckets)
        )  # type: ignore[return-value]

    # -------------------------------------------------------------- #
    # Legacy-stats views
    # -------------------------------------------------------------- #

    def register_view(
        self,
        group: str,
        target: object,
        extractor: Optional[ViewExtractor] = None,
    ) -> None:
        """Expose a live stats object under the ``group`` view.

        Only a weak reference is kept: a scheduler or service being
        garbage-collected silently leaves the group (dead references are
        pruned at snapshot time). Several objects may share one group —
        two schedulers in one process — in which case numeric fields are
        summed and non-numeric fields are dropped; a group with exactly
        one live object reports its fields verbatim.
        """
        _check_name(group)
        entry = (weakref.ref(target), extractor or _default_extract)
        with self._lock:
            self._views.setdefault(group, []).append(entry)

    def _view_values(self) -> Dict[str, Dict[str, object]]:
        """Materialised views, dead references pruned, per-group merge."""
        with self._lock:
            groups = {name: list(entries) for name, entries in self._views.items()}
        merged: Dict[str, Dict[str, object]] = {}
        for name, entries in groups.items():
            extracted: List[Mapping[str, object]] = []
            live: List[Tuple[weakref.ref, ViewExtractor]] = []
            for reference, extractor in entries:
                target = reference()
                if target is None:
                    continue
                live.append((reference, extractor))
                extracted.append(extractor(target))
            with self._lock:
                if name in self._views:
                    self._views[name] = live
            if not extracted:
                continue
            if len(extracted) == 1:
                merged[name] = dict(extracted[0])
                continue
            summed: Dict[str, object] = {}
            for fields in extracted:
                for key, value in fields.items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    summed[key] = summed.get(key, 0) + value  # type: ignore[operator]
            merged[name] = summed
        return merged

    # -------------------------------------------------------------- #
    # Exposition
    # -------------------------------------------------------------- #

    def snapshot(self) -> Dict[str, object]:
        """Everything the registry knows, as one JSON-ready dict."""
        with self._lock:
            counters = {name: metric.value for name, metric in self._counters.items()}
            gauges = {name: metric.value for name, metric in self._gauges.items()}
            histograms = {
                name: {
                    "count": metric.count,
                    "sum": round(metric.sum, 9),
                    "buckets": [
                        [bound, count] for bound, count in metric.cumulative()
                    ],
                    "p50": metric.quantile(0.5),
                    "p95": metric.quantile(0.95),
                }
                for name, metric in self._histograms.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "views": self._view_values(),
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        View fields become gauges named ``freqywm_<group>_<field>``;
        non-numeric view fields (an attribution's ``mode`` string) are
        skipped — exposition values must be numbers.
        """
        lines: List[str] = []
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        for name, counter in sorted(counters):
            prom = _prom_name(name) + "_total"
            if counter.help:
                lines.append(f"# HELP {prom} {counter.help}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(counter.value)}")
        for name, gauge in sorted(gauges):
            prom = _prom_name(name)
            if gauge.help:
                lines.append(f"# HELP {prom} {gauge.help}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(gauge.value)}")
        for name, histogram in sorted(histograms):
            prom = _prom_name(name)
            if histogram.help:
                lines.append(f"# HELP {prom} {histogram.help}")
            lines.append(f"# TYPE {prom} histogram")
            for bound, count in histogram.cumulative():
                lines.append(f'{prom}_bucket{{le="{_format_value(bound)}"}} {count}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{prom}_sum {_format_value(histogram.sum)}")
            lines.append(f"{prom}_count {histogram.count}")
        for group, fields in sorted(self._view_values().items()):
            for field, value in sorted(fields.items()):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                prom = _prom_name(f"{group}.{field}")
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Forget every metric and view (tests only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._views.clear()


def _format_value(value: float) -> str:
    """Render a number without a trailing ``.0`` for integral values."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry singleton."""
    return _REGISTRY


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]
