"""Hierarchical trace spans with cross-process stitching.

One :class:`Tracer` per process produces **spans** — named, timed
segments with a ``trace_id`` shared by every span of one logical
request, a unique ``span_id``, and a ``parent_id`` linking the segment
to whatever enclosed it. The ambient parent travels in a
:class:`contextvars.ContextVar`, so nested ``with span(...)`` blocks
stitch themselves without threading ids through call signatures, and a
*remote* parent (a scheduler client two processes away) is injected
explicitly via the ``parent=`` override — that is how a
``freqywm worker`` task span ends up under the experiment level span
that dispatched it.

Three properties keep the tracer honest about its costs:

* **off means off** — with the ``spans`` feature disabled,
  :func:`span` returns one shared no-op context manager: no id
  generation, no clock reads, no dict allocation. The hot batch paths
  pay a single attribute check.
* **bounded buffering** — finished spans land in a fixed-size ring
  buffer (:data:`SPAN_BUFFER_CAP`); overflow drops the *oldest* span
  and counts the loss instead of growing without bound. Worker
  processes :func:`drain` their buffer after every task and ship the
  spans back with the result, so a worker crash can never lose more
  than the crashing task's own spans.
* **JSON-lines sink** — a configured sink file receives each span as
  one JSON line the moment it finishes (flushed), so a killed parent
  still leaves every completed span on disk for
  ``freqywm trace report``.

Enablement comes from ``FREQYWM_TELEMETRY`` (a comma list out of
``spans``, ``metrics``, ``profile``) or an explicit
:func:`configure_telemetry` call; see ``docs/observability.md``.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError

#: Environment variable naming the enabled telemetry features.
TELEMETRY_ENV = "FREQYWM_TELEMETRY"

#: The features ``FREQYWM_TELEMETRY`` may name.
TELEMETRY_FEATURES = ("spans", "metrics", "profile")

#: Finished spans kept in the in-memory ring buffer before the oldest
#: is dropped (and counted). Sized for the largest realistic burst one
#: drain interval produces — an experiment level is hundreds of tasks,
#: not thousands of spans per task.
SPAN_BUFFER_CAP = 4096

#: A propagated trace context: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, str]


def parse_telemetry(value: Optional[str]) -> frozenset:
    """Parse a ``FREQYWM_TELEMETRY``-style comma list into a feature set.

    ``None``/empty/``"off"`` mean no telemetry; ``"all"`` enables every
    feature; unknown names raise :class:`ConfigurationError` so a typo
    cannot silently disable the instrumentation someone asked for.
    """
    if value is None:
        return frozenset()
    names = [name.strip().lower() for name in value.split(",") if name.strip()]
    if not names or names == ["off"]:
        return frozenset()
    if "all" in names:
        return frozenset(TELEMETRY_FEATURES)
    unknown = sorted(set(names) - set(TELEMETRY_FEATURES))
    if unknown:
        raise ConfigurationError(
            f"unknown telemetry feature(s) {unknown} "
            f"(valid: {', '.join(TELEMETRY_FEATURES)}, or 'all'/'off')"
        )
    return frozenset(names)


_FEATURES: frozenset = frozenset()
_ENV_LOADED = False


def configure_telemetry(features: Union[str, Iterable[str], None]) -> frozenset:
    """Set the enabled telemetry features for this process explicitly.

    Accepts a comma string (CLI/policy form) or an iterable of feature
    names; returns the resulting feature set. Passing ``None`` disables
    everything. Overrides whatever the environment said.
    """
    global _FEATURES, _ENV_LOADED
    if features is None or isinstance(features, str):
        parsed = parse_telemetry(features)
    else:
        parsed = parse_telemetry(",".join(features))
    _FEATURES = parsed
    _ENV_LOADED = True
    return _FEATURES


def enabled_features() -> frozenset:
    """The enabled telemetry features (environment read once, lazily)."""
    global _ENV_LOADED, _FEATURES
    if not _ENV_LOADED:
        _FEATURES = parse_telemetry(os.environ.get(TELEMETRY_ENV))
        _ENV_LOADED = True
    return _FEATURES


def spans_active() -> bool:
    """Whether span recording is enabled in this process."""
    return "spans" in enabled_features()


def metrics_active() -> bool:
    """Whether the metrics registry is enabled in this process."""
    return "metrics" in enabled_features()


def profile_active() -> bool:
    """Whether the slow-task profiler is enabled in this process."""
    return "profile" in enabled_features()


def _new_id(nbytes: int) -> str:
    """A random lowercase-hex identifier of ``2 * nbytes`` characters."""
    return uuid.uuid4().hex[: 2 * nbytes]


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, _name: str, _value: object) -> None:
        """Ignore the attribute (tracing is off)."""

    @property
    def context(self) -> None:
        """No context to propagate (tracing is off)."""
        return None


_NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """One in-flight span: mutable attributes until the block exits."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs", "_start", "_wall")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._start = time.perf_counter()
        self._wall = time.time()

    def set_attribute(self, name: str, value: object) -> None:
        """Attach one structured attribute to the span."""
        self.attrs[name] = value

    @property
    def context(self) -> TraceContext:
        """This span's ``(trace_id, span_id)`` — inject it into children."""
        return (self.trace_id, self.span_id)

    def finish(self, status: str) -> Dict[str, object]:
        """The finished span as its JSON-serialisable dict form."""
        record: Dict[str, object] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self._wall, 6),
            "duration": round(time.perf_counter() - self._start, 9),
            "status": status,
            "pid": os.getpid(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Process-local span recorder with a ring buffer and optional sink.

    One instance per process (module singleton via :func:`tracer`);
    fork-started pool workers detect the pid change and reset inherited
    buffer/sink state so a child never re-emits its parent's spans.
    """

    def __init__(self) -> None:
        self._buffer: List[Dict[str, object]] = []
        self.dropped = 0
        self._sink_path: Optional[str] = None
        self._sink_file: Optional[IO[str]] = None
        self._pid = os.getpid()
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #

    def _check_pid(self) -> None:
        """Reset state inherited across a fork (child ≠ recording parent)."""
        if self._pid != os.getpid():
            self._buffer = []
            self.dropped = 0
            self._sink_path = None
            self._sink_file = None
            self._pid = os.getpid()

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Optional[TraceContext] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Iterator[Union[ActiveSpan, _NoopSpan]]:
        """Record one span around the enclosed block.

        With spans disabled *and* no explicit ``parent``, this is a
        no-op (one shared inert object, nothing allocated). An explicit
        ``parent`` — a :data:`TraceContext` shipped from another process
        — forces recording even in a process that never enabled
        telemetry itself: the dispatching parent asked for this trace,
        so the worker records and ships the span back.

        The block's exception (if any) marks the span ``status:
        "error"`` with the exception type attached, then propagates.
        """
        if parent is None and not spans_active():
            yield _NOOP_SPAN
            return
        self._check_pid()
        current = _CURRENT.get()
        if parent is not None:
            trace_id, parent_id = parent
        elif current is not None:
            trace_id, parent_id = current
        else:
            trace_id, parent_id = _new_id(16), None  # new root trace
        active = ActiveSpan(
            trace_id, _new_id(8), parent_id, name, dict(attributes or ())
        )
        token = _CURRENT.set(active.context)
        status = "ok"
        try:
            yield active
        except BaseException as error:
            status = "error"
            active.attrs.setdefault("error_type", type(error).__name__)
            raise
        finally:
            _CURRENT.reset(token)
            self._record(active.finish(status))

    def _record(self, record: Dict[str, object]) -> None:
        """Buffer one finished span (bounded) and append it to the sink.

        Lock-guarded: the remote scheduler's per-worker client threads
        ingest shipped spans concurrently, and sink lines must never
        interleave mid-record.
        """
        with self._lock:
            if len(self._buffer) >= SPAN_BUFFER_CAP:
                del self._buffer[0]
                self.dropped += 1
            self._buffer.append(record)
            self._write_sink(record)

    # -------------------------------------------------------------- #
    # Cross-process stitching
    # -------------------------------------------------------------- #

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return every buffered span (worker → result line)."""
        self._check_pid()
        with self._lock:
            drained, self._buffer = self._buffer, []
        return drained

    def ingest(self, spans: Iterable[Dict[str, object]]) -> None:
        """Adopt spans recorded in another process (result line → parent).

        Ingested spans re-enter this tracer's buffer and sink exactly as
        if they had finished locally — their ids already stitch them
        under the dispatching span.
        """
        self._check_pid()
        for record in spans:
            if isinstance(record, dict):
                self._record(record)

    # -------------------------------------------------------------- #
    # Sink
    # -------------------------------------------------------------- #

    def set_sink(self, path: Union[str, os.PathLike, None]) -> None:
        """Stream every finished span to ``path`` as JSON lines.

        The file (and its parent directory) is created on first write;
        ``None`` detaches the sink. Already-buffered spans are flushed
        to the new sink immediately so a sink attached just after the
        root span opened still sees the whole trace.
        """
        self._check_pid()
        with self._lock:
            if self._sink_file is not None:
                self._sink_file.close()
                self._sink_file = None
            self._sink_path = None if path is None else str(path)
            if self._sink_path is not None:
                for record in self._buffer:
                    self._write_sink(record)

    def _write_sink(self, record: Dict[str, object]) -> None:
        if self._sink_path is None:
            return
        if self._sink_file is None:
            directory = os.path.dirname(self._sink_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._sink_file = open(self._sink_path, "a", encoding="utf-8")
        self._sink_file.write(json.dumps(record, default=str, sort_keys=True) + "\n")
        self._sink_file.flush()

    # -------------------------------------------------------------- #
    # Introspection / lifecycle
    # -------------------------------------------------------------- #

    @property
    def buffered(self) -> int:
        """Spans currently held in the ring buffer."""
        return len(self._buffer)

    def reset(self) -> None:
        """Drop buffered spans, the drop counter, and any sink (tests)."""
        self.set_sink(None)
        self._buffer = []
        self.dropped = 0
        self._pid = os.getpid()


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def span(
    name: str,
    *,
    parent: Optional[TraceContext] = None,
    attributes: Optional[Dict[str, object]] = None,
):
    """Record a span on the process-wide tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(name, parent=parent, attributes=attributes)


def current_context() -> Optional[TraceContext]:
    """The ambient ``(trace_id, span_id)``, or None outside any span."""
    return _CURRENT.get()


__all__ = [
    "SPAN_BUFFER_CAP",
    "TELEMETRY_ENV",
    "TELEMETRY_FEATURES",
    "ActiveSpan",
    "TraceContext",
    "Tracer",
    "configure_telemetry",
    "current_context",
    "enabled_features",
    "metrics_active",
    "parse_telemetry",
    "profile_active",
    "span",
    "spans_active",
    "tracer",
]
