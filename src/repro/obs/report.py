"""Render a recorded span stream as a per-phase time breakdown.

``freqywm trace report RUN_DIR`` reads the ``telemetry/spans.jsonl``
JSON-lines file an experiment run (or any traced process) produced,
rebuilds the span tree, and prints where the wall-clock went: one
tree-indented line per span for small traces, plus an aggregated
per-span-name table (count, total, mean, max) that stays readable when
a run produced thousands of task spans. The same machinery backs the
programmatic API (:func:`load_spans`, :func:`build_tree`,
:func:`aggregate`) used by tests and ``tools/check_telemetry.py``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError

#: Where a run directory keeps its span stream.
SPANS_RELPATH = os.path.join("telemetry", "spans.jsonl")

#: Tree rendering stops expanding below this many spans.
TREE_LIMIT = 200


def load_spans(path: str) -> List[dict]:
    """Read one span dict per line from a JSON-lines file.

    ``path`` may be the spans file itself or a run directory containing
    ``telemetry/spans.jsonl``. Blank lines are skipped; an unreadable
    line raises :class:`ReproError` with its line number.
    """
    if os.path.isdir(path):
        path = os.path.join(path, SPANS_RELPATH)
    if not os.path.exists(path):
        raise ReproError(f"no span stream at {path}")
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{number}: invalid span JSON: {error}"
                ) from error
            if not isinstance(record, dict):
                raise ReproError(f"{path}:{number}: span is not an object")
            spans.append(record)
    return spans


class SpanNode:
    """One span plus its children in the reconstructed tree."""

    __slots__ = ("span", "children")

    def __init__(self, span: dict) -> None:
        self.span = span
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        """The span's operation name."""
        return str(self.span.get("name", "?"))

    @property
    def duration(self) -> float:
        """The span's duration in seconds."""
        try:
            return float(self.span.get("duration", 0.0))
        except (TypeError, ValueError):
            return 0.0


def build_tree(spans: Sequence[dict]) -> Dict[str, List[SpanNode]]:
    """Group spans by trace id and parent each under its recorded parent.

    Returns ``{trace_id: [root nodes]}``. A span whose parent id never
    appears in the stream becomes a root of its trace — callers that
    want to *assert* stitching (the propagation tests) use
    :func:`orphan_spans` instead, which reports exactly those spans.
    Children are sorted by start time for a stable rendering.
    """
    nodes: Dict[str, SpanNode] = {}
    for span in spans:
        span_id = str(span.get("span"))
        nodes[span_id] = SpanNode(span)
    roots: Dict[str, List[SpanNode]] = {}
    for node in nodes.values():
        parent_id = node.span.get("parent")
        parent = nodes.get(str(parent_id)) if parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            trace = str(node.span.get("trace", "?"))
            roots.setdefault(trace, []).append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span.get("start", 0.0))
    for root_list in roots.values():
        root_list.sort(key=lambda child: child.span.get("start", 0.0))
    return roots


def orphan_spans(spans: Sequence[dict]) -> List[dict]:
    """Spans whose recorded parent id is absent from the stream."""
    known = {str(span.get("span")) for span in spans}
    orphans = []
    for span in spans:
        parent_id = span.get("parent")
        if parent_id and str(parent_id) not in known:
            orphans.append(span)
    return orphans


def aggregate(spans: Sequence[dict]) -> List[dict]:
    """Per-span-name totals: count, total/mean/max duration, errors.

    Sorted by total duration descending — the first row answers "where
    did the time go".
    """
    rows: Dict[str, dict] = {}
    for span in spans:
        name = str(span.get("name", "?"))
        try:
            duration = float(span.get("duration", 0.0))
        except (TypeError, ValueError):
            duration = 0.0
        row = rows.setdefault(
            name,
            {"name": name, "count": 0, "total": 0.0, "max": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["total"] += duration
        row["max"] = max(row["max"], duration)
        if span.get("status") == "error":
            row["errors"] += 1
    output = []
    for row in rows.values():
        row["total"] = round(row["total"], 6)
        row["max"] = round(row["max"], 6)
        row["mean"] = round(row["total"] / row["count"], 6) if row["count"] else 0.0
        output.append(row)
    output.sort(key=lambda row: row["total"], reverse=True)
    return output


def _render_node(node: SpanNode, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    status = "" if node.span.get("status", "ok") == "ok" else " [ERROR]"
    lines.append(f"{indent}{node.name}  {node.duration * 1000:.1f}ms{status}")
    for child in node.children:
        _render_node(child, depth + 1, lines)


def render_report(spans: Sequence[dict], limit: Optional[int] = None) -> str:
    """The human-readable trace report for a span stream.

    Shows the aggregated per-name table always, and the full indented
    tree when the stream holds at most ``limit`` spans (default
    ``TREE_LIMIT``) — large runs get the table plus a per-trace summary
    line instead of thousands of tree rows.
    """
    if not spans:
        return "no spans recorded\n"
    cap = TREE_LIMIT if limit is None else limit
    lines: List[str] = []
    table = aggregate(spans)
    name_width = max(len(row["name"]) for row in table)
    name_width = max(name_width, len("span"))
    lines.append(
        f"{'span':<{name_width}}  {'count':>6}  {'total_s':>9}  "
        f"{'mean_s':>9}  {'max_s':>9}  {'errors':>6}"
    )
    for row in table:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>6}  "
            f"{row['total']:>9.3f}  {row['mean']:>9.3f}  "
            f"{row['max']:>9.3f}  {row['errors']:>6}"
        )
    orphans = orphan_spans(spans)
    traces = build_tree(spans)
    lines.append("")
    lines.append(
        f"{len(spans)} spans, {len(traces)} trace(s), {len(orphans)} orphan(s)"
    )
    if len(spans) <= cap:
        for trace_id, roots in sorted(traces.items()):
            lines.append("")
            lines.append(f"trace {trace_id}")
            for root in roots:
                _render_node(root, 1, lines)
    return "\n".join(lines) + "\n"


__all__ = [
    "SPANS_RELPATH",
    "TREE_LIMIT",
    "SpanNode",
    "aggregate",
    "build_tree",
    "load_spans",
    "orphan_spans",
    "render_report",
]
