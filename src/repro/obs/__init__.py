"""Unified telemetry plane: trace spans, metrics, profiling, logging.

Four dependency-free pillars shared by every layer of the
reproduction:

* :mod:`repro.obs.trace` — a context-var tracer producing hierarchical
  spans that stitch across processes (local pool children and remote
  workers ship their spans back to the dispatching parent);
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with weak-reference *views* over the legacy
  stats objects, exported as JSON snapshots or Prometheus text;
* :mod:`repro.obs.profile` — the opt-in slow-task cProfile hook that
  attaches top frames to a task's span;
* :mod:`repro.obs.logging` — one ``configure()`` for every repro
  logger, driven by ``FREQYWM_LOG``.

Everything is off by default and priced accordingly: with telemetry
disabled the tracer hands back a shared no-op span and the metric
registry is never consulted on hot paths. Enable features with
``FREQYWM_TELEMETRY=spans,metrics,profile`` (or ``all``), an
``ExecutionPolicy(telemetry=...)``, or ``--telemetry`` on the CLI.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.trace import (
    TELEMETRY_ENV,
    TELEMETRY_FEATURES,
    Tracer,
    configure_telemetry,
    current_context,
    enabled_features,
    metrics_active,
    parse_telemetry,
    profile_active,
    span,
    spans_active,
    tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TELEMETRY_ENV",
    "TELEMETRY_FEATURES",
    "Tracer",
    "configure_telemetry",
    "current_context",
    "enabled_features",
    "metrics_active",
    "parse_telemetry",
    "profile_active",
    "registry",
    "span",
    "spans_active",
    "tracer",
]
