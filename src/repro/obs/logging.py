"""One logging setup for every ``repro`` module.

Before this module existed each subsystem called ``logging.getLogger``
on its own and inherited whatever handler/format the embedding
application happened to install — six modules, six formats, no way to
turn the whole reproduction up to debug with one switch. Now every
module asks :func:`get_logger` for its logger and the CLI (or any
embedder) calls :func:`configure` once; the ``FREQYWM_LOG`` environment
variable picks the level and format without touching code::

    FREQYWM_LOG=debug            # human-readable lines at DEBUG
    FREQYWM_LOG=info:json        # one JSON object per record
    FREQYWM_LOG=warning:plain    # explicit plain format

Structured events — a worker's shutdown summary, a sharding pool's
spawn failure — go through :func:`log_record`, which renders the same
``key=value`` pairs in plain mode and a proper JSON object in json
mode, so log scrapers never parse prose.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Optional

from repro.exceptions import ConfigurationError

#: Environment variable controlling level and format: ``LEVEL[:FORMAT]``.
LOG_ENV = "FREQYWM_LOG"

#: The root logger every repro module hangs off.
ROOT_LOGGER = "repro"

_PLAIN_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_FORMATS = ("plain", "json")

_CONFIGURED = False


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Serialise ``record`` (message, level, logger, extras) to JSON."""
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["error_type"] = record.exc_info[0].__name__
        return json.dumps(payload, default=str, sort_keys=True)


class PlainFormatter(logging.Formatter):
    """Human-readable lines; structured fields appended as key=value."""

    def __init__(self) -> None:
        super().__init__(_PLAIN_FORMAT)

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record``, appending any structured fields."""
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            tail = " ".join(
                f"{key}={value}" for key, value in sorted(fields.items())
            )
            return f"{base} {tail}"
        return base


def parse_log_env(value: Optional[str]) -> tuple:
    """Parse ``LEVEL[:FORMAT]`` into ``(level, format_name)``.

    ``None``/empty means the default ``(logging.WARNING, "plain")``.
    Unknown levels or formats raise :class:`ConfigurationError` so a
    typo in ``FREQYWM_LOG`` fails loudly instead of silencing logs.
    """
    if not value:
        return logging.WARNING, "plain"
    level_part, _, format_part = value.strip().lower().partition(":")
    if level_part not in _LEVELS:
        raise ConfigurationError(
            f"{LOG_ENV} level {level_part!r} not in {sorted(_LEVELS)}"
        )
    format_name = format_part or "plain"
    if format_name not in _FORMATS:
        raise ConfigurationError(
            f"{LOG_ENV} format {format_name!r} not in {list(_FORMATS)}"
        )
    return _LEVELS[level_part], format_name


def configure(
    level: Optional[int] = None,
    format_name: Optional[str] = None,
    stream=None,
    force: bool = False,
) -> logging.Logger:
    """Install one handler on the ``repro`` root logger.

    Arguments override ``FREQYWM_LOG``; both default to the environment.
    Idempotent: a second call is a no-op unless ``force`` is set (which
    replaces the previously installed handler — used by tests and by
    the CLI when a ``--log`` flag should beat the environment).
    Returns the configured root logger.
    """
    global _CONFIGURED
    root = logging.getLogger(ROOT_LOGGER)
    if _CONFIGURED and not force:
        return root
    env_level, env_format = parse_log_env(os.environ.get(LOG_ENV))
    effective_level = env_level if level is None else level
    effective_format = env_format if format_name is None else format_name
    if effective_format not in _FORMATS:
        raise ConfigurationError(
            f"log format {effective_format!r} not in {list(_FORMATS)}"
        )
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonFormatter() if effective_format == "json" else PlainFormatter()
    )
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs", False):
            root.removeHandler(existing)
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(effective_level)
    root.propagate = False
    _CONFIGURED = True
    return root


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` root logger for module ``name``.

    Accepts either a bare suffix (``"exec.scheduler"``) or a full
    dunder-name (``"repro.exec.scheduler"``); both land under the same
    root so :func:`configure` governs them all.
    """
    if name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_record(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Emit a structured record: an event name plus key=value fields.

    In json mode the fields become top-level JSON keys; in plain mode
    they are appended as sorted ``key=value`` pairs. Use this for
    machine-relevant events (worker summaries, spawn failures) instead
    of interpolating values into prose.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


def reset() -> None:
    """Drop installed handlers and configuration state (tests only).

    Also restores propagation to the logging root so pytest's ``caplog``
    (which listens there) sees records again after a test configured us.
    """
    global _CONFIGURED
    root = logging.getLogger(ROOT_LOGGER)
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs", False):
            root.removeHandler(existing)
    root.propagate = True
    _CONFIGURED = False


__all__ = [
    "LOG_ENV",
    "ROOT_LOGGER",
    "JsonFormatter",
    "PlainFormatter",
    "configure",
    "get_logger",
    "log_record",
    "parse_log_env",
    "reset",
]
