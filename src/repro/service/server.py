"""JSON-lines transports for the detection service.

Two transports expose one :class:`~repro.service.service.DetectionService`
to out-of-process clients, both speaking the
:mod:`repro.service.wire` format (one JSON object per line):

* **stdio** (:func:`serve_stdio`) — requests on stdin, responses on
  stdout; this is what ``freqywm serve`` runs by default and what
  ``freqywm client`` spawns as a subprocess when no socket is given.
* **Unix socket** (:func:`serve_unix`) — ``freqywm serve --socket PATH``;
  many clients may connect concurrently and their requests coalesce
  *across connections* into shared vectorized passes.

Requests are answered as their coalesced batches complete, so responses
can arrive out of order; clients must match on the echoed ``id``. A
malformed line never kills the transport — it is answered with a
failure response carrying the best-effort request id.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import IO, Optional, Union

from repro.exceptions import ReproError
from repro.service.service import DetectionService
from repro.service.wire import (
    AttributeResponse,
    DetectResponse,
    EmbedResponse,
    RegisterResponse,
    RevokeResponse,
    StatsResponse,
    TaskResult,
    WireResponse,
    decode_request,
    encode_line,
)

#: Failure-response constructor per verb, for undecodable lines.
_FAILURE_TYPES = {
    "detect": DetectResponse,
    "embed": EmbedResponse,
    "register": RegisterResponse,
    "revoke": RevokeResponse,
    "attribute": AttributeResponse,
    "stats": StatsResponse,
    "task": TaskResult,
}


def _failure_for_line(line: str, error: Exception) -> WireResponse:
    """A failure response for an undecodable line, best-effort id/verb."""
    request_id = "?"
    operation = "detect"
    try:
        payload = json.loads(line)
        if isinstance(payload, dict):
            if isinstance(payload.get("id"), str):
                request_id = payload["id"]
            operation = payload.get("op", "detect")
    except json.JSONDecodeError:
        pass
    failure_type = _FAILURE_TYPES.get(operation, DetectResponse)
    return failure_type.failure(request_id, str(error))


async def _respond(service: DetectionService, line: str) -> WireResponse:
    """Decode and answer one request line (never raises for bad input)."""
    try:
        request = decode_request(line)
    except ReproError as error:
        service.stats.failures += 1
        return _failure_for_line(line, error)
    return await service.submit(request)


async def serve_stdio(
    service: DetectionService,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve JSON-lines requests from a text stream until EOF.

    Each line is answered as a task, so pipelined requests coalesce;
    responses are written (one JSON line each) as they complete. Returns
    the number of lines served.
    """
    import sys

    reader = in_stream if in_stream is not None else sys.stdin
    writer = out_stream if out_stream is not None else sys.stdout
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    # Finished tasks remove themselves, so a long-lived session holds
    # only the in-flight requests, not everything it ever served.
    tasks: set = set()

    async def handle(line: str) -> None:
        response = await _respond(service, line)
        async with write_lock:
            writer.write(encode_line(response) + "\n")
            writer.flush()

    served = 0
    while True:
        # stdin is a blocking file object; readline in the default
        # executor keeps the loop (and thus the coalescing batcher) live.
        line = await loop.run_in_executor(None, reader.readline)
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        served += 1
        task = asyncio.ensure_future(handle(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*list(tasks))
    return served


async def serve_unix(
    service: DetectionService,
    socket_path: Union[str, Path],
    *,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Serve JSON-lines requests on a Unix domain socket until cancelled.

    Every connection is handled concurrently and each connection's lines
    are answered as tasks, so requests coalesce across all connected
    clients. ``ready`` (when given) is set once the socket is listening —
    tests and the spawning client use it to avoid connect races. The
    socket file is removed on shutdown.
    """
    path = Path(socket_path)

    async def handle_connection(
        conn_reader: asyncio.StreamReader, conn_writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        # Self-pruning like serve_stdio: memory stays O(in-flight), not
        # O(total served), on persistent connections.
        tasks: set = set()

        async def handle(line: str) -> None:
            response = await _respond(service, line)
            async with write_lock:
                conn_writer.write((encode_line(response) + "\n").encode("utf-8"))
                await conn_writer.drain()

        try:
            while True:
                raw = await conn_reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                task = asyncio.ensure_future(handle(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*list(tasks))
        finally:
            conn_writer.close()

    server = await asyncio.start_unix_server(handle_connection, path=str(path))
    try:
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()
    finally:
        if path.exists():
            os.unlink(path)


__all__ = ["serve_stdio", "serve_unix"]
