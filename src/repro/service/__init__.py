"""Resident detection service: cached detectors, coalescing, transports.

The third scale-out leg after the vectorized engine (``repro.core``
arrays/batch) and the streaming + sharding layer: a long-lived service
that amortises detector construction across requests (LRU cache keyed by
secret/config fingerprint), coalesces concurrent single-dataset requests
into shared vectorized ``detect_many`` passes, and optionally fans large
coalesced batches out through a sharded worker pool.

Layers, bottom up:

* :mod:`repro.service.cache` — :class:`DetectorCache`, the fingerprint-
  keyed LRU of constructed detectors;
* :mod:`repro.service.service` — :class:`DetectionService` (asyncio
  queue + batcher) and :class:`SyncDetectionService` (blocking facade);
* :mod:`repro.service.wire` — the typed, versioned JSON-lines format
  (``detect`` / ``embed`` / ``register`` / ``revoke`` / ``attribute``);
* :mod:`repro.service.server` / :mod:`repro.service.client` — stdio and
  Unix-socket transports, exposed as ``freqywm serve`` / ``freqywm
  client``.

The registry verbs turn the resident service into a multi-tenant vault:
``serve --vault DIR`` backs them with a persistent
:class:`~repro.dispute.vault.SecretVault`; without it an in-memory
:class:`~repro.dispute.registry.WatermarkRegistry` is created on first
use. See ``docs/service.md`` for the versioned wire protocol reference
and ``docs/registry.md`` for the attribution flow.
"""

from repro.core.cache import DEFAULT_CACHE_CAPACITY, CacheStats, DetectorCache
from repro.service.client import ServiceClient
from repro.service.server import serve_stdio, serve_unix
from repro.service.service import (
    DetectionService,
    ServiceConfig,
    ServiceStats,
    SyncDetectionService,
)
from repro.service.wire import (
    PROTOCOL_VERSION,
    AttributeRequest,
    AttributeResponse,
    DetectRequest,
    DetectResponse,
    EmbedRequest,
    EmbedResponse,
    RegisterRequest,
    RegisterResponse,
    RevokeRequest,
    RevokeResponse,
    WireRequest,
    WireResponse,
    decode_request,
    decode_response,
    encode_line,
)

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "PROTOCOL_VERSION",
    "CacheStats",
    "DetectorCache",
    "ServiceClient",
    "serve_stdio",
    "serve_unix",
    "DetectionService",
    "ServiceConfig",
    "ServiceStats",
    "SyncDetectionService",
    "AttributeRequest",
    "AttributeResponse",
    "DetectRequest",
    "DetectResponse",
    "EmbedRequest",
    "EmbedResponse",
    "RegisterRequest",
    "RegisterResponse",
    "RevokeRequest",
    "RevokeResponse",
    "WireRequest",
    "WireResponse",
    "decode_request",
    "decode_response",
    "encode_line",
]
