"""Resident detection service: cached detectors, coalescing, transports.

The third scale-out leg after the vectorized engine (``repro.core``
arrays/batch) and the streaming + sharding layer: a long-lived service
that amortises detector construction across requests (LRU cache keyed by
secret/config fingerprint), coalesces concurrent single-dataset requests
into shared vectorized ``detect_many`` passes, and optionally fans large
coalesced batches out through a sharded worker pool.

Layers, bottom up:

* :mod:`repro.service.cache` — :class:`DetectorCache`, the fingerprint-
  keyed LRU of constructed detectors;
* :mod:`repro.service.service` — :class:`DetectionService` (asyncio
  queue + batcher) and :class:`SyncDetectionService` (blocking facade);
* :mod:`repro.service.wire` — the typed :class:`DetectRequest` /
  :class:`DetectResponse` JSON-lines format;
* :mod:`repro.service.server` / :mod:`repro.service.client` — stdio and
  Unix-socket transports, exposed as ``freqywm serve`` / ``freqywm
  client``.

See ``docs/service.md`` for the wire schema, cache semantics, and the
coalescing-window knobs.
"""

from repro.core.cache import DEFAULT_CACHE_CAPACITY, CacheStats, DetectorCache
from repro.service.client import ServiceClient
from repro.service.server import serve_stdio, serve_unix
from repro.service.service import (
    DetectionService,
    ServiceConfig,
    ServiceStats,
    SyncDetectionService,
)
from repro.service.wire import (
    DetectRequest,
    DetectResponse,
    EmbedRequest,
    EmbedResponse,
    WireRequest,
    WireResponse,
    decode_request,
    decode_response,
    encode_line,
)

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "CacheStats",
    "DetectorCache",
    "ServiceClient",
    "serve_stdio",
    "serve_unix",
    "DetectionService",
    "ServiceConfig",
    "ServiceStats",
    "SyncDetectionService",
    "DetectRequest",
    "DetectResponse",
    "EmbedRequest",
    "EmbedResponse",
    "WireRequest",
    "WireResponse",
    "decode_request",
    "decode_response",
    "encode_line",
]
