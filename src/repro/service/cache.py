"""Compatibility shim: the detector cache now lives in :mod:`repro.core.cache`.

The cache was promoted out of the service layer when the attack, dispute
and multi-watermark layers were refactored onto shared cached detectors;
import :class:`~repro.core.cache.DetectorCache` from ``repro.core`` (or
``repro.service``, which keeps re-exporting it) going forward.
"""

from repro.core.cache import DEFAULT_CACHE_CAPACITY, CacheStats, DetectorCache

__all__ = ["DEFAULT_CACHE_CAPACITY", "CacheStats", "DetectorCache"]
