"""Typed request/response wire format of the watermarking service.

Seven verbs share the JSON-lines transport, discriminated by the
optional ``op`` field:

* **detect** (the default when ``op`` is absent) — *is this dataset
  watermarked with that secret?* The dataset travels either as a raw
  token list (``tokens``) or — far more compactly — as its frequency
  histogram (``counts``); the secret travels either inline (``secret``,
  the JSON payload of :meth:`~repro.core.secrets.WatermarkSecret.to_dict`)
  or as a fingerprint reference (``secret_fingerprint``) to a secret
  registered with the service ahead of time, so the secret material
  crosses the wire once, not per request.
* **embed** (``op: "embed"``) — *watermark this dataset for me*: the
  service runs ``WM_Generate`` and answers with the watermarked
  histogram (or edited token sequence) plus the freshly produced secret
  list, which the owner must store.
* **register** (``op: "register"``) — *vault this buyer's watermark*:
  the secret enters the service's multi-tenant registry (the in-memory
  :class:`~repro.dispute.registry.WatermarkRegistry`, or the persistent
  :class:`~repro.dispute.vault.SecretVault` under ``serve --vault``).
* **revoke** (``op: "revoke"``) — withdraw a buyer's watermark from the
  vault, appending an entry to the hash-chained ledger.
* **attribute** (``op: "attribute"``) — *whose watermark does this
  leaked copy carry?* The service runs the index-backed registry lookup
  and answers with the matching buyers, strongest first.
* **task** (``op: "task"``) / **result** (``op: "result"``) — the
  distributed-scheduler leg (version 3): a
  :class:`~repro.exec.remote.RemoteScheduler` ships one fingerprinted
  :class:`~repro.exec.scheduler.TaskSpec` per ``task`` line to a
  ``freqywm worker`` process, which answers with one ``result`` line.
  Payloads travel as base64-pickled blobs (``payload`` /
  ``init_args``), which assumes a *trusted* transport — exactly the
  stance of the multiprocessing pools these verbs generalise; see
  ``docs/scheduler.md``. A ``task`` line whose ``function`` is
  ``"__heartbeat__"`` is a liveness probe: workers answer it
  immediately, even while a real task is running.

* **Data plane** (v4): a line whose ``frames`` field lists byte counts
  is followed by exactly those **length-prefixed binary frames** on the
  same stream — pickle-protocol-5 metadata plus out-of-band buffers,
  replacing the base64 text encoding (a 33% wire tax) for task
  payloads, results and blobs. ``task`` lines may carry ``blob_refs``
  (SHA-256 digests of shared values); a worker missing a digest asks
  for it once with a ``blob-request`` line and the client answers with
  a ``blob`` line + frames, so a 200-task sweep ships a shared secret
  once per worker rather than once per task. v3 peers never see frames:
  the scheduler probes each worker's version first and falls back to
  inline base64 payloads automatically.

On the transport, each request and each response is **one JSON object per
line** (JSON-lines). Responses carry the request's ``id`` so they may be
delivered out of order; detect responses' ``batch_size`` and
``cache_hit`` expose what the coalescing layer actually did, which the
benchmarks and the property tests use to assert the batching happened.

Every line :func:`encode_line` produces also carries the protocol
version as ``v`` (an absent ``v`` means version 1, the pre-registry
wire). The compatibility rule: a peer accepts any line whose version is
*at most* its own :data:`PROTOCOL_VERSION` — fields are only ever added,
and decoders ignore unknown fields — and rejects higher versions with
the error envelope rather than guessing at semantics it does not know.
The field-by-field schema per verb is documented in ``docs/service.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import DetectionResult, SuspectData
from repro.core.generator import WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import ConfigurationError, HistogramError, ServiceError

#: Version of the wire protocol this module speaks. Version 1 is the
#: pre-registry wire (detect/embed, no ``v`` field); version 2 added the
#: ``register``/``revoke``/``attribute`` verbs and the ``v`` field
#: itself; version 3 added the scheduler's ``task``/``result`` verbs.
#: Version 4 adds the data plane: length-prefixed binary frames after a
#: line (the ``frames`` field lists their sizes), the ``blob`` /
#: ``blob-request`` verbs, and ``blob_refs`` on task lines. Peers accept
#: lines with ``v`` at most their own version (absent means 1) and
#: reject higher ones — see the module docstring.
PROTOCOL_VERSION = 4

#: Keys accepted in a request's ``config`` object (DetectionConfig kwargs).
_CONFIG_KEYS = frozenset(
    {
        "pair_threshold",
        "pair_threshold_fraction",
        "min_accepted_pairs",
        "min_accepted_fraction",
        "symmetric_tolerance",
    }
)

#: Keys accepted in an embed request's ``config`` object
#: (GenerationConfig kwargs).
_GENERATION_CONFIG_KEYS = frozenset(
    {
        "budget_percent",
        "modulus_cap",
        "strategy",
        "metric",
        "secret_bits",
        "max_candidates",
        "excluded_tokens",
        "require_modification",
        "max_pairs",
    }
)


@dataclass(frozen=True)
class DetectRequest:
    """One detection request on the service wire.

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the response.
    tokens:
        The suspected dataset as a raw token sequence. Mutually
        exclusive with ``counts``.
    counts:
        The suspected dataset as a token→frequency histogram (compact
        form; detection only ever consumes the histogram).
    secret:
        Inline secret payload (:meth:`WatermarkSecret.to_dict` shape).
        Mutually exclusive with ``secret_fingerprint``.
    secret_fingerprint:
        Reference to a secret previously registered with the service
        (:meth:`repro.service.service.DetectionService.register_secret`).
    config:
        Optional detection-threshold overrides
        (:class:`~repro.core.config.DetectionConfig` keyword arguments).
    """

    request_id: str
    tokens: Optional[Tuple[str, ...]] = None
    counts: Optional[Dict[str, int]] = None
    secret: Optional[Dict[str, object]] = None
    secret_fingerprint: Optional[str] = None
    config: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if (self.tokens is None) == (self.counts is None):
            raise ServiceError(
                f"request {self.request_id!r} must carry exactly one of "
                "tokens/counts"
            )
        if (self.secret is None) == (self.secret_fingerprint is None):
            raise ServiceError(
                f"request {self.request_id!r} must carry exactly one of "
                "secret/secret_fingerprint"
            )
        if self.config is not None:
            unknown = set(self.config) - _CONFIG_KEYS
            if unknown:
                raise ServiceError(
                    f"request {self.request_id!r} has unknown config keys: "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------ #
    # Decoding into pipeline objects
    # ------------------------------------------------------------------ #

    def suspect(self) -> SuspectData:
        """The suspected dataset as detector input."""
        if self.counts is not None:
            try:
                return TokenHistogram.from_counts(self.counts)
            except (HistogramError, TypeError, ValueError) as exc:
                raise ServiceError(
                    f"request {self.request_id!r} has malformed counts: {exc}"
                ) from exc
        return list(self.tokens or ())

    def inline_secret(self) -> Optional[WatermarkSecret]:
        """The inline secret, decoded — None for fingerprint references."""
        if self.secret is None:
            return None
        try:
            return WatermarkSecret.from_dict(self.secret)
        except ConfigurationError as exc:
            raise ServiceError(
                f"request {self.request_id!r} has a malformed secret: {exc}"
            ) from exc

    def detection_config(self) -> Optional[DetectionConfig]:
        """The per-request threshold overrides, decoded — None when absent."""
        if self.config is None:
            return None
        try:
            return DetectionConfig(**self.config)  # type: ignore[arg-type]
        except (ConfigurationError, TypeError) as exc:
            raise ServiceError(
                f"request {self.request_id!r} has a malformed config: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # JSON codec
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (None fields omitted)."""
        payload: Dict[str, object] = {"id": self.request_id}
        if self.tokens is not None:
            payload["tokens"] = list(self.tokens)
        if self.counts is not None:
            payload["counts"] = dict(self.counts)
        if self.secret is not None:
            payload["secret"] = dict(self.secret)
        if self.secret_fingerprint is not None:
            payload["secret_fingerprint"] = self.secret_fingerprint
        if self.config is not None:
            payload["config"] = dict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DetectRequest":
        """Rebuild a request from :meth:`to_dict` output (validating)."""
        if not isinstance(payload, dict):
            raise ServiceError("request payload must be a JSON object")
        request_id = payload.get("id")
        if not isinstance(request_id, str) or not request_id:
            raise ServiceError("request payload is missing a string 'id'")
        tokens = payload.get("tokens")
        counts = payload.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                raise ServiceError(
                    f"request {request_id!r} counts must be an object"
                )
            for token, count in counts.items():
                # Strict: a float count would be silently truncated by
                # int() and the verdict computed on an altered histogram.
                if isinstance(count, bool) or not isinstance(count, int):
                    raise ServiceError(
                        f"request {request_id!r} count for {token!r} must be "
                        f"an integer, got {count!r}"
                    )
        try:
            return cls(
                request_id=request_id,
                tokens=tuple(str(token) for token in tokens)
                if tokens is not None
                else None,
                counts={str(k): int(v) for k, v in counts.items()}
                if counts is not None
                else None,
                secret=payload.get("secret"),  # type: ignore[arg-type]
                secret_fingerprint=payload.get("secret_fingerprint"),  # type: ignore[arg-type]
                config=payload.get("config"),  # type: ignore[arg-type]
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(
                f"request {request_id!r} payload is malformed: {exc}"
            ) from exc


@dataclass(frozen=True)
class DetectResponse:
    """One verdict (or failure) on the service wire.

    ``ok`` distinguishes verdicts from failures: a failure carries only
    ``error``; a verdict mirrors the
    :class:`~repro.core.detector.DetectionResult` counters and annotates
    how the request was executed — ``batch_size`` is the size of the
    coalesced ``detect_many`` batch it rode in, ``cache_hit`` whether the
    detector came from the LRU cache.
    """

    request_id: str
    ok: bool
    accepted: Optional[bool] = None
    accepted_pairs: Optional[int] = None
    required_pairs: Optional[int] = None
    total_pairs: Optional[int] = None
    batch_size: int = 0
    cache_hit: bool = False
    error: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        request_id: str,
        result: DetectionResult,
        *,
        batch_size: int,
        cache_hit: bool,
    ) -> "DetectResponse":
        """Wrap a detection result into a wire response."""
        return cls(
            request_id=request_id,
            ok=True,
            accepted=result.accepted,
            accepted_pairs=result.accepted_pairs,
            required_pairs=result.required_pairs,
            total_pairs=result.total_pairs,
            batch_size=batch_size,
            cache_hit=cache_hit,
        )

    @classmethod
    def failure(cls, request_id: str, message: str) -> "DetectResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    @property
    def accepted_fraction(self) -> float:
        """Fraction of stored pairs that verified (0 for failures)."""
        if not self.ok or not self.total_pairs:
            return 0.0
        return (self.accepted_pairs or 0) / self.total_pairs

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {"id": self.request_id, "ok": self.ok}
        if self.ok:
            payload.update(
                {
                    "accepted": self.accepted,
                    "accepted_pairs": self.accepted_pairs,
                    "required_pairs": self.required_pairs,
                    "total_pairs": self.total_pairs,
                    "batch_size": self.batch_size,
                    "cache_hit": self.cache_hit,
                }
            )
        else:
            payload["error"] = self.error
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DetectResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            accepted=bool(payload.get("accepted")),
            accepted_pairs=int(payload.get("accepted_pairs", 0)),  # type: ignore[arg-type]
            required_pairs=int(payload.get("required_pairs", 0)),  # type: ignore[arg-type]
            total_pairs=int(payload.get("total_pairs", 0)),  # type: ignore[arg-type]
            batch_size=int(payload.get("batch_size", 0)),  # type: ignore[arg-type]
            cache_hit=bool(payload.get("cache_hit")),
            extra=dict(payload.get("extra", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class EmbedRequest:
    """One embedding (generation) request on the service wire.

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the response.
    tokens:
        The dataset to watermark as a raw token sequence. Mutually
        exclusive with ``counts``; required when ``return_tokens``.
    counts:
        The dataset as a token→frequency histogram (histogram-only
        embedding: the caller applies the frequency changes itself).
    config:
        Optional generation-parameter overrides
        (:class:`~repro.core.config.GenerationConfig` keyword arguments).
    seed:
        Optional integer seed for reproducible embedding. ``None`` (the
        secure default) samples the secret from the OS CSPRNG.
    secret_value:
        Optional explicit secret ``R``. Each embed request runs
        independently on the service (no cross-request derivation
        sharing); for fleet-scale embedding under one owner secret use
        the batch engine (:func:`repro.core.batch.embed_many`), which
        does amortise the moduli derivations across the batch.
    return_tokens:
        When True (``tokens`` input only), the response carries the
        edited token sequence, not just the watermarked histogram.
    """

    request_id: str
    tokens: Optional[Tuple[str, ...]] = None
    counts: Optional[Dict[str, int]] = None
    config: Optional[Dict[str, object]] = None
    seed: Optional[int] = None
    secret_value: Optional[int] = None
    return_tokens: bool = False

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if (self.tokens is None) == (self.counts is None):
            raise ServiceError(
                f"embed request {self.request_id!r} must carry exactly one of "
                "tokens/counts"
            )
        if self.return_tokens and self.tokens is None:
            raise ServiceError(
                f"embed request {self.request_id!r} asks for tokens back but "
                "sent only counts"
            )
        if self.config is not None:
            unknown = set(self.config) - _GENERATION_CONFIG_KEYS
            if unknown:
                raise ServiceError(
                    f"embed request {self.request_id!r} has unknown config "
                    f"keys: {sorted(unknown)}"
                )

    # ------------------------------------------------------------------ #
    # Decoding into pipeline objects
    # ------------------------------------------------------------------ #

    def data(self) -> Union[List[str], TokenHistogram]:
        """The dataset as generator input."""
        if self.counts is not None:
            try:
                return TokenHistogram.from_counts(self.counts)
            except (HistogramError, TypeError, ValueError) as exc:
                raise ServiceError(
                    f"embed request {self.request_id!r} has malformed counts: {exc}"
                ) from exc
        return list(self.tokens or ())

    def generation_config(self) -> GenerationConfig:
        """The generation parameters, decoded (defaults when absent)."""
        if self.config is None:
            return GenerationConfig()
        arguments = dict(self.config)
        if "excluded_tokens" in arguments:
            arguments["excluded_tokens"] = tuple(
                str(token) for token in arguments["excluded_tokens"]  # type: ignore[union-attr]
            )
        try:
            return GenerationConfig(**arguments)  # type: ignore[arg-type]
        except (ConfigurationError, TypeError) as exc:
            raise ServiceError(
                f"embed request {self.request_id!r} has a malformed config: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # JSON codec
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (None fields omitted)."""
        payload: Dict[str, object] = {"op": "embed", "id": self.request_id}
        if self.tokens is not None:
            payload["tokens"] = list(self.tokens)
        if self.counts is not None:
            payload["counts"] = dict(self.counts)
        if self.config is not None:
            payload["config"] = dict(self.config)
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.secret_value is not None:
            # Decimal string, mirroring WatermarkSecret.to_dict: R may
            # exceed what non-Python JSON consumers keep exact.
            payload["secret_value"] = str(self.secret_value)
        if self.return_tokens:
            payload["return_tokens"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EmbedRequest":
        """Rebuild an embed request from :meth:`to_dict` output (validating)."""
        if not isinstance(payload, dict):
            raise ServiceError("request payload must be a JSON object")
        request_id = payload.get("id")
        if not isinstance(request_id, str) or not request_id:
            raise ServiceError("request payload is missing a string 'id'")
        tokens = payload.get("tokens")
        counts = payload.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                raise ServiceError(
                    f"embed request {request_id!r} counts must be an object"
                )
            for token, count in counts.items():
                if isinstance(count, bool) or not isinstance(count, int):
                    raise ServiceError(
                        f"embed request {request_id!r} count for {token!r} must "
                        f"be an integer, got {count!r}"
                    )
        seed = payload.get("seed")
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ServiceError(
                f"embed request {request_id!r} seed must be an integer, got {seed!r}"
            )
        secret_value = payload.get("secret_value")
        try:
            return cls(
                request_id=request_id,
                tokens=tuple(str(token) for token in tokens)
                if tokens is not None
                else None,
                counts={str(k): int(v) for k, v in counts.items()}
                if counts is not None
                else None,
                config=payload.get("config"),  # type: ignore[arg-type]
                seed=seed,
                secret_value=int(str(secret_value))
                if secret_value is not None
                else None,
                return_tokens=bool(payload.get("return_tokens", False)),
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(
                f"embed request {request_id!r} payload is malformed: {exc}"
            ) from exc


@dataclass(frozen=True)
class EmbedResponse:
    """One embedding outcome (or failure) on the service wire.

    A success carries the watermarked histogram (``counts``), optionally
    the edited token sequence, the freshly produced secret list payload
    — which the owner must store; it never enters any registry — and the
    generation summary counters.
    """

    request_id: str
    ok: bool
    counts: Optional[Dict[str, int]] = None
    tokens: Optional[Tuple[str, ...]] = None
    secret: Optional[Dict[str, object]] = None
    selected_pairs: Optional[int] = None
    similarity_percent: Optional[float] = None
    total_changes: Optional[int] = None
    error: Optional[str] = None

    @classmethod
    def from_result(
        cls,
        request_id: str,
        result: WatermarkResult,
        *,
        include_tokens: bool = False,
    ) -> "EmbedResponse":
        """Wrap a generation result into a wire response."""
        return cls(
            request_id=request_id,
            ok=True,
            counts=result.watermarked_histogram.as_dict(),
            tokens=tuple(result.watermarked_tokens)
            if include_tokens and result.watermarked_tokens is not None
            else None,
            secret=result.secret.to_dict(),
            selected_pairs=result.pair_count,
            similarity_percent=result.similarity_percent,
            total_changes=result.total_changes,
        )

    @classmethod
    def failure(cls, request_id: str, message: str) -> "EmbedResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def watermark_secret(self) -> WatermarkSecret:
        """The produced secret list, decoded (raises for failures)."""
        if not self.ok or self.secret is None:
            raise ServiceError(
                f"embed response {self.request_id!r} carries no secret"
            )
        return WatermarkSecret.from_dict(self.secret)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "embed",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            payload.update(
                {
                    "counts": dict(self.counts or {}),
                    "secret": dict(self.secret or {}),
                    "selected_pairs": self.selected_pairs,
                    "similarity_percent": self.similarity_percent,
                    "total_changes": self.total_changes,
                }
            )
            if self.tokens is not None:
                payload["tokens"] = list(self.tokens)
        else:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EmbedResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        tokens = payload.get("tokens")
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            counts={str(k): int(v) for k, v in dict(payload.get("counts", {})).items()},  # type: ignore[arg-type]
            tokens=tuple(str(token) for token in tokens) if tokens is not None else None,
            secret=dict(payload.get("secret", {})),  # type: ignore[arg-type]
            selected_pairs=int(payload.get("selected_pairs", 0)),  # type: ignore[arg-type]
            similarity_percent=float(payload.get("similarity_percent", 0.0)),  # type: ignore[arg-type]
            total_changes=int(payload.get("total_changes", 0)),  # type: ignore[arg-type]
        )


def _validated_id(payload: Dict[str, object], verb: str) -> str:
    """Extract and validate the ``id`` field of a request payload."""
    if not isinstance(payload, dict):
        raise ServiceError(f"{verb} request payload must be a JSON object")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ServiceError(f"{verb} request payload is missing a string 'id'")
    return request_id


def _validated_buyer(payload: Dict[str, object], request_id: str, verb: str) -> str:
    """Extract and validate the ``buyer_id`` field of a registry payload."""
    buyer_id = payload.get("buyer_id")
    if not isinstance(buyer_id, str) or not buyer_id:
        raise ServiceError(
            f"{verb} request {request_id!r} is missing a string 'buyer_id'"
        )
    return buyer_id


@dataclass(frozen=True)
class RegisterRequest:
    """One vault registration on the service wire (``op: "register"``).

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the response.
    buyer_id:
        The buyer the watermark was issued to (vault key).
    secret:
        The secret payload (:meth:`WatermarkSecret.to_dict` shape) to
        vault. Unlike detect's fingerprint references, registration
        necessarily carries the material once — that is the transfer
        that makes later fingerprint-free attribution possible.
    metadata:
        Free-form provenance recorded on the chained ledger entry.
    """

    request_id: str
    buyer_id: str
    secret: Dict[str, object]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if not self.buyer_id:
            raise ServiceError(
                f"register request {self.request_id!r} needs a non-empty buyer_id"
            )

    def watermark_secret(self) -> WatermarkSecret:
        """The secret to vault, decoded."""
        try:
            return WatermarkSecret.from_dict(self.secret)
        except ConfigurationError as exc:
            raise ServiceError(
                f"register request {self.request_id!r} has a malformed secret: {exc}"
            ) from exc

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (empty metadata omitted)."""
        payload: Dict[str, object] = {
            "op": "register",
            "id": self.request_id,
            "buyer_id": self.buyer_id,
            "secret": dict(self.secret),
        }
        if self.metadata:
            payload["metadata"] = dict(self.metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RegisterRequest":
        """Rebuild a register request from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "register")
        buyer_id = _validated_buyer(payload, request_id, "register")
        secret = payload.get("secret")
        if not isinstance(secret, dict):
            raise ServiceError(
                f"register request {request_id!r} needs a 'secret' object"
            )
        metadata = payload.get("metadata", {})
        if not isinstance(metadata, dict):
            raise ServiceError(
                f"register request {request_id!r} metadata must be an object"
            )
        return cls(
            request_id=request_id,
            buyer_id=buyer_id,
            secret=secret,
            metadata=dict(metadata),
        )


@dataclass(frozen=True)
class RegisterResponse:
    """One registration outcome (or failure) on the service wire."""

    request_id: str
    ok: bool
    buyer_id: Optional[str] = None
    fingerprint: Optional[str] = None
    vault_size: Optional[int] = None
    error: Optional[str] = None

    @classmethod
    def failure(cls, request_id: str, message: str) -> "RegisterResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "register",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            payload.update(
                {
                    "buyer_id": self.buyer_id,
                    "fingerprint": self.fingerprint,
                    "vault_size": self.vault_size,
                }
            )
        else:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RegisterResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            buyer_id=str(payload.get("buyer_id", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            vault_size=int(payload.get("vault_size", 0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RevokeRequest:
    """One vault revocation on the service wire (``op: "revoke"``)."""

    request_id: str
    buyer_id: str
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if not self.buyer_id:
            raise ServiceError(
                f"revoke request {self.request_id!r} needs a non-empty buyer_id"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (empty metadata omitted)."""
        payload: Dict[str, object] = {
            "op": "revoke",
            "id": self.request_id,
            "buyer_id": self.buyer_id,
        }
        if self.metadata:
            payload["metadata"] = dict(self.metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RevokeRequest":
        """Rebuild a revoke request from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "revoke")
        buyer_id = _validated_buyer(payload, request_id, "revoke")
        metadata = payload.get("metadata", {})
        if not isinstance(metadata, dict):
            raise ServiceError(
                f"revoke request {request_id!r} metadata must be an object"
            )
        return cls(request_id=request_id, buyer_id=buyer_id, metadata=dict(metadata))


@dataclass(frozen=True)
class RevokeResponse:
    """One revocation outcome (or failure) on the service wire."""

    request_id: str
    ok: bool
    buyer_id: Optional[str] = None
    fingerprint: Optional[str] = None
    vault_size: Optional[int] = None
    error: Optional[str] = None

    @classmethod
    def failure(cls, request_id: str, message: str) -> "RevokeResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "revoke",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            payload.update(
                {
                    "buyer_id": self.buyer_id,
                    "fingerprint": self.fingerprint,
                    "vault_size": self.vault_size,
                }
            )
        else:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RevokeResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            buyer_id=str(payload.get("buyer_id", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            vault_size=int(payload.get("vault_size", 0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class AttributeRequest:
    """One leak-attribution request on the service wire (``op: "attribute"``).

    The leaked copy travels like a detect request's dataset — ``tokens``
    or (far more compactly) ``counts`` — but no secret accompanies it:
    the whole point is asking the vault *whose* watermark it carries.
    ``config`` optionally overrides the attribution thresholds
    (:class:`~repro.core.config.DetectionConfig` keyword arguments; the
    service default is the registry's ``pair_threshold=1``).
    """

    request_id: str
    tokens: Optional[Tuple[str, ...]] = None
    counts: Optional[Dict[str, int]] = None
    config: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if (self.tokens is None) == (self.counts is None):
            raise ServiceError(
                f"attribute request {self.request_id!r} must carry exactly one "
                "of tokens/counts"
            )
        if self.config is not None:
            unknown = set(self.config) - _CONFIG_KEYS
            if unknown:
                raise ServiceError(
                    f"attribute request {self.request_id!r} has unknown config "
                    f"keys: {sorted(unknown)}"
                )

    def suspect(self) -> SuspectData:
        """The leaked copy as attribution input."""
        if self.counts is not None:
            try:
                return TokenHistogram.from_counts(self.counts)
            except (HistogramError, TypeError, ValueError) as exc:
                raise ServiceError(
                    f"attribute request {self.request_id!r} has malformed "
                    f"counts: {exc}"
                ) from exc
        return list(self.tokens or ())

    def detection_config(self) -> Optional[DetectionConfig]:
        """The threshold overrides, decoded — None when absent."""
        if self.config is None:
            return None
        try:
            return DetectionConfig(**self.config)  # type: ignore[arg-type]
        except (ConfigurationError, TypeError) as exc:
            raise ServiceError(
                f"attribute request {self.request_id!r} has a malformed "
                f"config: {exc}"
            ) from exc

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (None fields omitted)."""
        payload: Dict[str, object] = {"op": "attribute", "id": self.request_id}
        if self.tokens is not None:
            payload["tokens"] = list(self.tokens)
        if self.counts is not None:
            payload["counts"] = dict(self.counts)
        if self.config is not None:
            payload["config"] = dict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttributeRequest":
        """Rebuild an attribute request from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "attribute")
        tokens = payload.get("tokens")
        counts = payload.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                raise ServiceError(
                    f"attribute request {request_id!r} counts must be an object"
                )
            for token, count in counts.items():
                if isinstance(count, bool) or not isinstance(count, int):
                    raise ServiceError(
                        f"attribute request {request_id!r} count for {token!r} "
                        f"must be an integer, got {count!r}"
                    )
        try:
            return cls(
                request_id=request_id,
                tokens=tuple(str(token) for token in tokens)
                if tokens is not None
                else None,
                counts={str(k): int(v) for k, v in counts.items()}
                if counts is not None
                else None,
                config=payload.get("config"),  # type: ignore[arg-type]
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(
                f"attribute request {request_id!r} payload is malformed: {exc}"
            ) from exc


@dataclass(frozen=True)
class AttributeResponse:
    """One attribution outcome (or failure) on the service wire.

    ``matches`` lists the buyers whose watermark verified on the leaked
    copy, strongest (highest accepted-pair fraction) first. ``mode`` /
    ``candidates`` / ``active_secrets`` mirror the registry's
    :class:`~repro.dispute.registry.AttributionStats` so wire clients can
    observe how much the candidate index pruned.
    """

    request_id: str
    ok: bool
    matches: Tuple[Tuple[str, float], ...] = ()
    mode: Optional[str] = None
    candidates: Optional[int] = None
    active_secrets: Optional[int] = None
    error: Optional[str] = None

    @classmethod
    def failure(cls, request_id: str, message: str) -> "AttributeResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "attribute",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            payload.update(
                {
                    "matches": [
                        {"buyer_id": buyer_id, "accepted_fraction": fraction}
                        for buyer_id, fraction in self.matches
                    ],
                    "mode": self.mode,
                    "candidates": self.candidates,
                    "active_secrets": self.active_secrets,
                }
            )
        else:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttributeResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        raw_matches = payload.get("matches", [])
        if not isinstance(raw_matches, list):
            raise ServiceError(
                f"attribute response {payload['id']!r} matches must be a list"
            )
        matches = tuple(
            (str(match["buyer_id"]), float(match["accepted_fraction"]))
            for match in raw_matches
        )
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            matches=matches,
            mode=str(payload.get("mode", "")) or None,
            candidates=int(payload.get("candidates", 0)),  # type: ignore[arg-type]
            active_secrets=int(payload.get("active_secrets", 0)),  # type: ignore[arg-type]
        )


#: ``function`` value marking a task request as a liveness probe.
HEARTBEAT_FUNCTION = "__heartbeat__"

#: Upper bound on any single binary frame a v4 line may announce; a
#: corrupt length must never talk a peer into an unbounded allocation.
MAX_FRAME_BYTES = 1 << 31


def _validated_frames(payload: Dict[str, object], request_id: str) -> Tuple[int, ...]:
    """The ``frames`` field as a validated tuple of byte counts."""
    value = payload.get("frames")
    if value is None:
        return ()
    if not isinstance(value, list) or not all(
        isinstance(item, int)
        and not isinstance(item, bool)
        and 0 <= item <= MAX_FRAME_BYTES
        for item in value
    ):
        raise ServiceError(
            f"line {request_id!r} 'frames' must be a list of frame byte counts"
        )
    return tuple(value)


def _validated_digests(payload: Dict[str, object], request_id: str) -> Tuple[str, ...]:
    """The ``blob_refs`` field as a validated tuple of digest strings."""
    value = payload.get("blob_refs")
    if value is None:
        return ()
    if not isinstance(value, list) or not all(
        isinstance(item, str) and item for item in value
    ):
        raise ServiceError(
            f"task request {request_id!r} 'blob_refs' must be a list of digests"
        )
    return tuple(value)


def _validated_count(payload: Dict[str, object], name: str, request_id: str) -> int:
    """A non-negative integer field (absent = 0)."""
    value = payload.get(name, 0)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ServiceError(
            f"line {request_id!r} field {name!r} must be a non-negative integer"
        )
    return value


def _validated_trace(
    payload: Dict[str, object], request_id: str
) -> Optional[Tuple[str, str]]:
    """The optional ``trace`` field as a ``(trace_id, parent_id)`` pair."""
    value = payload.get("trace")
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or len(value) != 2
        or not all(isinstance(item, str) and item for item in value)
    ):
        raise ServiceError(
            f"task request {request_id!r} 'trace' must be a "
            "[trace_id, parent_span_id] pair of strings"
        )
    return (value[0], value[1])


def _validated_spans(
    payload: Dict[str, object], request_id: str
) -> Tuple[Dict[str, object], ...]:
    """The optional ``spans`` field as a tuple of span dicts."""
    value = payload.get("spans")
    if value is None:
        return ()
    if not isinstance(value, list) or not all(
        isinstance(item, dict) for item in value
    ):
        raise ServiceError(
            f"line {request_id!r} 'spans' must be a list of span objects"
        )
    return tuple(value)


@dataclass(frozen=True)
class TaskRequest:
    """One scheduler task on the service wire (``op: "task"``).

    The executable part travels as *names* — a registered task
    ``function`` and optional ``initializer`` — while the data parts
    (``payload``, ``init_args``) are base64-pickled blobs produced by
    :func:`repro.exec.remote.pickle_b64`. Pickle on the wire is a
    deliberate trusted-transport trade-off (documented in
    ``docs/scheduler.md``): the remote leg generalises an in-machine
    ``multiprocessing`` pool, which pickles the very same objects.

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the result line.
    function:
        Registered task-function name, or :data:`HEARTBEAT_FUNCTION`
        for a liveness probe (all other fields then stay empty).
    payload:
        Base64-pickled task payload (``None`` for heartbeats).
    initializer:
        Optional registered initializer name for worker-local state.
    init_key:
        Cache key for the initializer product (required with
        ``initializer``).
    init_args:
        Base64-pickled initializer arguments tuple.
    fingerprint:
        The task's stable identifier, echoed on the result so lost or
        failed work stays attributable.
    blob_refs:
        v4: SHA-256 digests of blobs this task references. The worker
        fetches any digest it has not cached via ``blob-request``
        before running the task.
    frames:
        v4: byte sizes of the binary frames following this line. When
        set, ``payload``/``init_args`` are absent and the frames carry
        their pickle-protocol-5 serialisations instead.
    payload_frames:
        v4: how many leading entries of ``frames`` belong to the
        payload (metadata frame + out-of-band buffers).
    init_frames:
        v4: how many entries after the payload's belong to
        ``init_args`` (0 = inherit the v3 ``init_args`` field).
    trace:
        Optional ``(trace_id, parent_span_id)`` telemetry context.
        A worker receiving it records a span for the task and ships
        the span back on the result line; peers that predate the field
        ignore it (fields are only ever *added* within a protocol
        version, so this stays v4).
    """

    request_id: str
    function: str
    payload: Optional[str] = None
    initializer: Optional[str] = None
    init_key: str = ""
    init_args: Optional[str] = None
    fingerprint: str = ""
    blob_refs: Tuple[str, ...] = ()
    frames: Tuple[int, ...] = ()
    payload_frames: int = 0
    init_frames: int = 0
    trace: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if not self.function:
            raise ServiceError(
                f"task request {self.request_id!r} needs a function name"
            )
        if self.initializer is not None and not self.init_key:
            raise ServiceError(
                f"task request {self.request_id!r} names an initializer "
                "but no init_key"
            )

    @property
    def is_heartbeat(self) -> bool:
        """Whether this request is a liveness probe, not a task."""
        return self.function == HEARTBEAT_FUNCTION

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (None fields omitted)."""
        payload: Dict[str, object] = {
            "op": "task",
            "id": self.request_id,
            "function": self.function,
        }
        if self.payload is not None:
            payload["payload"] = self.payload
        if self.initializer is not None:
            payload["initializer"] = self.initializer
        if self.init_key:
            payload["init_key"] = self.init_key
        if self.init_args is not None:
            payload["init_args"] = self.init_args
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        if self.blob_refs:
            payload["blob_refs"] = list(self.blob_refs)
        if self.frames:
            payload["frames"] = list(self.frames)
            payload["payload_frames"] = self.payload_frames
            payload["init_frames"] = self.init_frames
        if self.trace is not None:
            payload["trace"] = list(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TaskRequest":
        """Rebuild a task request from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "task")
        function = payload.get("function")
        if not isinstance(function, str) or not function:
            raise ServiceError(
                f"task request {request_id!r} needs a string 'function'"
            )
        for name in ("payload", "initializer", "init_key", "init_args", "fingerprint"):
            value = payload.get(name)
            if value is not None and not isinstance(value, str):
                raise ServiceError(
                    f"task request {request_id!r} field {name!r} must be a string"
                )
        return cls(
            request_id=request_id,
            function=function,
            payload=payload.get("payload"),  # type: ignore[arg-type]
            initializer=payload.get("initializer"),  # type: ignore[arg-type]
            init_key=str(payload.get("init_key", "")),
            init_args=payload.get("init_args"),  # type: ignore[arg-type]
            fingerprint=str(payload.get("fingerprint", "")),
            blob_refs=_validated_digests(payload, request_id),
            frames=_validated_frames(payload, request_id),
            payload_frames=_validated_count(payload, "payload_frames", request_id),
            init_frames=_validated_count(payload, "init_frames", request_id),
            trace=_validated_trace(payload, request_id),
        )


@dataclass(frozen=True)
class TaskResult:
    """One scheduler task outcome on the service wire (``op: "result"``).

    A success carries the base64-pickled return value — or, on a v4
    stream, announces binary ``frames`` after the line holding the
    value's pickle-protocol-5 serialisation instead. A failure carries
    the exception's type name and message so the client can re-raise a
    typed error without unpickling arbitrary exception objects.

    ``spans`` carries the telemetry spans the worker recorded for this
    task when the request asked for a trace (plain JSON objects, no
    pickling) — the client ingests them into its own tracer so one
    stitched tree spans both processes.
    """

    request_id: str
    ok: bool
    result: Optional[str] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    fingerprint: str = ""
    frames: Tuple[int, ...] = ()
    spans: Tuple[Dict[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("result id must be a non-empty string")

    @classmethod
    def failure(cls, request_id: str, message: str) -> "TaskResult":
        """A failure result carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "result",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            if self.result is not None:
                payload["result"] = self.result
        else:
            payload["error"] = self.error
            if self.error_type is not None:
                payload["error_type"] = self.error_type
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        if self.frames:
            payload["frames"] = list(self.frames)
        if self.spans:
            payload["spans"] = list(self.spans)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TaskResult":
        """Rebuild a task result from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        request_id = str(payload["id"])
        if not payload.get("ok"):
            error_type = payload.get("error_type")
            return cls(
                request_id=request_id,
                ok=False,
                error=str(payload.get("error", "unknown error")),
                error_type=str(error_type) if error_type is not None else None,
                fingerprint=str(payload.get("fingerprint", "")),
                frames=_validated_frames(payload, request_id),
                spans=_validated_spans(payload, request_id),
            )
        result = payload.get("result")
        if result is not None and not isinstance(result, str):
            raise ServiceError(
                f"task result {payload['id']!r} 'result' must be a string"
            )
        return cls(
            request_id=request_id,
            ok=True,
            result=result,
            fingerprint=str(payload.get("fingerprint", "")),
            frames=_validated_frames(payload, request_id),
            spans=_validated_spans(payload, request_id),
        )


@dataclass(frozen=True)
class BlobRequest:
    """A worker asking for a blob it does not hold (``op: "blob-request"``).

    Sent worker→client while a task naming unknown ``blob_refs`` is
    pending; ``request_id`` is the *task's* id so the client can relate
    the fetch to the in-flight task. Each worker asks for a given digest
    at most once per connection — the answer lands in its bounded store.
    """

    request_id: str
    digest: str

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("blob request id must be a non-empty string")
        if not self.digest:
            raise ServiceError("blob request needs a digest")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload."""
        return {"op": "blob-request", "id": self.request_id, "digest": self.digest}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BlobRequest":
        """Rebuild from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "blob-request")
        digest = payload.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ServiceError(
                f"blob request {request_id!r} needs a string 'digest'"
            )
        return cls(request_id=request_id, digest=digest)


@dataclass(frozen=True)
class BlobResponse:
    """A blob delivery answering a :class:`BlobRequest` (``op: "blob"``).

    On success the line's ``frames`` announce the blob's binary frames
    (pickle metadata first, then each out-of-band buffer) following on
    the stream. On failure — typically the client evicted the digest —
    ``ok`` is false and ``error``/``error_type`` carry a typed error
    (:class:`~repro.exceptions.BlobNotFoundError`) so the worker can
    fail the dependent task in a way the scheduler retries inline.
    """

    request_id: str
    digest: str
    ok: bool = True
    frames: Tuple[int, ...] = ()
    error: Optional[str] = None
    error_type: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("blob response id must be a non-empty string")
        if not self.digest:
            raise ServiceError("blob response needs a digest")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "blob",
            "id": self.request_id,
            "digest": self.digest,
            "ok": self.ok,
        }
        if self.ok:
            payload["frames"] = list(self.frames)
        else:
            payload["error"] = self.error
            if self.error_type is not None:
                payload["error_type"] = self.error_type
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BlobResponse":
        """Rebuild from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "blob")
        digest = payload.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ServiceError(f"blob line {request_id!r} needs a string 'digest'")
        if not payload.get("ok"):
            error_type = payload.get("error_type")
            return cls(
                request_id=request_id,
                digest=digest,
                ok=False,
                error=str(payload.get("error", "unknown error")),
                error_type=str(error_type) if error_type is not None else None,
            )
        return cls(
            request_id=request_id,
            digest=digest,
            ok=True,
            frames=_validated_frames(payload, request_id),
        )


@dataclass(frozen=True)
class StatsRequest:
    """A telemetry snapshot request (``op: "stats"``).

    Asks the service for its metrics registry — counters, gauges,
    histograms, and the legacy-stats views — in both exposition forms.
    Carries no arguments beyond the correlation id; the verb is an
    *additive* v4 extension (older peers answer with an unknown-op
    error envelope, which clients surface as a typed failure).
    """

    request_id: str

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("stats request id must be a non-empty string")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload."""
        return {"op": "stats", "id": self.request_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StatsRequest":
        """Rebuild from :meth:`to_dict` output (validating)."""
        return cls(request_id=_validated_id(payload, "stats"))


@dataclass(frozen=True)
class StatsResponse:
    """The telemetry snapshot answering a :class:`StatsRequest`.

    ``metrics`` is the registry's JSON snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`);
    ``prometheus`` is the same registry rendered in the Prometheus text
    exposition format, ready to serve to a scraper.
    """

    request_id: str
    ok: bool = True
    metrics: Dict[str, object] = field(default_factory=dict)
    prometheus: str = ""
    error: Optional[str] = None
    error_type: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("stats response id must be a non-empty string")

    @classmethod
    def failure(cls, request_id: str, message: str) -> "StatsResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {
            "op": "stats",
            "id": self.request_id,
            "ok": self.ok,
        }
        if self.ok:
            payload["metrics"] = self.metrics
            payload["prometheus"] = self.prometheus
        else:
            payload["error"] = self.error
            if self.error_type is not None:
                payload["error_type"] = self.error_type
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StatsResponse":
        """Rebuild from :meth:`to_dict` output (validating)."""
        request_id = _validated_id(payload, "stats")
        if not payload.get("ok"):
            error_type = payload.get("error_type")
            return cls(
                request_id=request_id,
                ok=False,
                error=str(payload.get("error", "unknown error")),
                error_type=str(error_type) if error_type is not None else None,
            )
        metrics = payload.get("metrics", {})
        if not isinstance(metrics, dict):
            raise ServiceError(
                f"stats response {request_id!r} 'metrics' must be an object"
            )
        prometheus = payload.get("prometheus", "")
        if not isinstance(prometheus, str):
            raise ServiceError(
                f"stats response {request_id!r} 'prometheus' must be a string"
            )
        return cls(request_id=request_id, ok=True, metrics=metrics, prometheus=prometheus)


#: Any verb's request / response, as produced by the line decoders. The
#: blob verbs appear in both unions: ``blob-request`` flows worker→client
#: (decoded with the responses) and ``blob`` flows client→worker (decoded
#: with the requests).
WireRequest = Union[
    DetectRequest,
    EmbedRequest,
    RegisterRequest,
    RevokeRequest,
    AttributeRequest,
    TaskRequest,
    StatsRequest,
    BlobRequest,
    BlobResponse,
]
WireResponse = Union[
    DetectResponse,
    EmbedResponse,
    RegisterResponse,
    RevokeResponse,
    AttributeResponse,
    TaskResult,
    StatsResponse,
    BlobRequest,
    BlobResponse,
]

_REQUEST_TYPES: Dict[str, type] = {
    "detect": DetectRequest,
    "embed": EmbedRequest,
    "register": RegisterRequest,
    "revoke": RevokeRequest,
    "attribute": AttributeRequest,
    "task": TaskRequest,
    "stats": StatsRequest,
    "blob": BlobResponse,
    "blob-request": BlobRequest,
}

_RESPONSE_TYPES: Dict[str, type] = {
    "detect": DetectResponse,
    "embed": EmbedResponse,
    "register": RegisterResponse,
    "revoke": RevokeResponse,
    "attribute": AttributeResponse,
    "result": TaskResult,
    "stats": StatsResponse,
    "blob": BlobResponse,
    "blob-request": BlobRequest,
}


def _check_protocol(payload: object) -> None:
    """Enforce the compatibility rule on a decoded payload's ``v`` field.

    An absent ``v`` means protocol version 1 (the pre-registry wire);
    any integer up to :data:`PROTOCOL_VERSION` is accepted; anything
    newer (or malformed) is rejected so a peer never silently
    misinterprets semantics it does not implement.
    """
    if not isinstance(payload, dict):
        return
    version = payload.get("v", 1)
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise ServiceError(f"protocol version must be a positive integer, got {version!r}")
    if version > PROTOCOL_VERSION:
        raise ServiceError(
            f"line speaks protocol version {version}, but this peer only "
            f"understands versions up to {PROTOCOL_VERSION}"
        )


def encode_line(message, *, version: Optional[int] = None) -> str:
    """Encode a request/response as one JSON line (no trailing newline).

    The line carries the sender's :data:`PROTOCOL_VERSION` as ``v`` next
    to the message payload, so peers can apply the compatibility rule
    before interpreting any verb-specific field. ``version`` lets a
    sender speak *down* to a negotiated older peer (the scheduler's
    v3 fallback path); speaking up is never valid.
    """
    payload = message.to_dict()
    payload["v"] = PROTOCOL_VERSION if version is None else min(version, PROTOCOL_VERSION)
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def decode_request(line: str) -> WireRequest:
    """Decode one JSON line into a validated request (any verb).

    The ``op`` field discriminates (absent means ``"detect"``); the
    ``v`` field is checked against :data:`PROTOCOL_VERSION` first.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request line is not valid JSON: {exc}") from exc
    _check_protocol(payload)
    if isinstance(payload, dict):
        operation = payload.get("op", "detect")
        request_type = _REQUEST_TYPES.get(operation)  # type: ignore[arg-type]
        if request_type is None:
            raise ServiceError(f"unknown request op {operation!r}")
        return request_type.from_dict(payload)
    return DetectRequest.from_dict(payload)


def decode_response(line: str) -> WireResponse:
    """Decode one JSON line into a response (any verb, op-discriminated)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"response line is not valid JSON: {exc}") from exc
    _check_protocol(payload)
    if isinstance(payload, dict):
        response_type = _RESPONSE_TYPES.get(payload.get("op", "detect"))  # type: ignore[arg-type]
        if response_type is not None:
            return response_type.from_dict(payload)
    return DetectResponse.from_dict(payload)


__all__ = [
    "HEARTBEAT_FUNCTION",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "AttributeRequest",
    "AttributeResponse",
    "BlobRequest",
    "BlobResponse",
    "DetectRequest",
    "DetectResponse",
    "EmbedRequest",
    "EmbedResponse",
    "RegisterRequest",
    "RegisterResponse",
    "RevokeRequest",
    "RevokeResponse",
    "StatsRequest",
    "StatsResponse",
    "TaskRequest",
    "TaskResult",
    "WireRequest",
    "WireResponse",
    "encode_line",
    "decode_request",
    "decode_response",
]
