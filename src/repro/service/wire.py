"""Typed request/response wire format of the detection service.

One request asks for one verdict: *is this dataset watermarked with that
secret?* The dataset travels either as a raw token list (``tokens``) or —
far more compactly — as its frequency histogram (``counts``); the secret
travels either inline (``secret``, the JSON payload of
:meth:`~repro.core.secrets.WatermarkSecret.to_dict`) or as a fingerprint
reference (``secret_fingerprint``) to a secret registered with the
service ahead of time, so the secret material crosses the wire once, not
per request.

On the transport, each request and each response is **one JSON object per
line** (JSON-lines). Responses carry the request's ``id`` so they may be
delivered out of order; ``batch_size`` and ``cache_hit`` expose what the
coalescing layer actually did, which the benchmarks and the property
tests use to assert the batching happened. The field-by-field schema is
documented in ``docs/service.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, SuspectData
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import ConfigurationError, HistogramError, ServiceError

#: Keys accepted in a request's ``config`` object (DetectionConfig kwargs).
_CONFIG_KEYS = frozenset(
    {
        "pair_threshold",
        "pair_threshold_fraction",
        "min_accepted_pairs",
        "min_accepted_fraction",
        "symmetric_tolerance",
    }
)


@dataclass(frozen=True)
class DetectRequest:
    """One detection request on the service wire.

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the response.
    tokens:
        The suspected dataset as a raw token sequence. Mutually
        exclusive with ``counts``.
    counts:
        The suspected dataset as a token→frequency histogram (compact
        form; detection only ever consumes the histogram).
    secret:
        Inline secret payload (:meth:`WatermarkSecret.to_dict` shape).
        Mutually exclusive with ``secret_fingerprint``.
    secret_fingerprint:
        Reference to a secret previously registered with the service
        (:meth:`repro.service.service.DetectionService.register_secret`).
    config:
        Optional detection-threshold overrides
        (:class:`~repro.core.config.DetectionConfig` keyword arguments).
    """

    request_id: str
    tokens: Optional[Tuple[str, ...]] = None
    counts: Optional[Dict[str, int]] = None
    secret: Optional[Dict[str, object]] = None
    secret_fingerprint: Optional[str] = None
    config: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServiceError("request id must be a non-empty string")
        if (self.tokens is None) == (self.counts is None):
            raise ServiceError(
                f"request {self.request_id!r} must carry exactly one of "
                "tokens/counts"
            )
        if (self.secret is None) == (self.secret_fingerprint is None):
            raise ServiceError(
                f"request {self.request_id!r} must carry exactly one of "
                "secret/secret_fingerprint"
            )
        if self.config is not None:
            unknown = set(self.config) - _CONFIG_KEYS
            if unknown:
                raise ServiceError(
                    f"request {self.request_id!r} has unknown config keys: "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------ #
    # Decoding into pipeline objects
    # ------------------------------------------------------------------ #

    def suspect(self) -> SuspectData:
        """The suspected dataset as detector input."""
        if self.counts is not None:
            try:
                return TokenHistogram.from_counts(self.counts)
            except (HistogramError, TypeError, ValueError) as exc:
                raise ServiceError(
                    f"request {self.request_id!r} has malformed counts: {exc}"
                ) from exc
        return list(self.tokens or ())

    def inline_secret(self) -> Optional[WatermarkSecret]:
        """The inline secret, decoded — None for fingerprint references."""
        if self.secret is None:
            return None
        try:
            return WatermarkSecret.from_dict(self.secret)
        except ConfigurationError as exc:
            raise ServiceError(
                f"request {self.request_id!r} has a malformed secret: {exc}"
            ) from exc

    def detection_config(self) -> Optional[DetectionConfig]:
        """The per-request threshold overrides, decoded — None when absent."""
        if self.config is None:
            return None
        try:
            return DetectionConfig(**self.config)  # type: ignore[arg-type]
        except (ConfigurationError, TypeError) as exc:
            raise ServiceError(
                f"request {self.request_id!r} has a malformed config: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # JSON codec
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (None fields omitted)."""
        payload: Dict[str, object] = {"id": self.request_id}
        if self.tokens is not None:
            payload["tokens"] = list(self.tokens)
        if self.counts is not None:
            payload["counts"] = dict(self.counts)
        if self.secret is not None:
            payload["secret"] = dict(self.secret)
        if self.secret_fingerprint is not None:
            payload["secret_fingerprint"] = self.secret_fingerprint
        if self.config is not None:
            payload["config"] = dict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DetectRequest":
        """Rebuild a request from :meth:`to_dict` output (validating)."""
        if not isinstance(payload, dict):
            raise ServiceError("request payload must be a JSON object")
        request_id = payload.get("id")
        if not isinstance(request_id, str) or not request_id:
            raise ServiceError("request payload is missing a string 'id'")
        tokens = payload.get("tokens")
        counts = payload.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                raise ServiceError(
                    f"request {request_id!r} counts must be an object"
                )
            for token, count in counts.items():
                # Strict: a float count would be silently truncated by
                # int() and the verdict computed on an altered histogram.
                if isinstance(count, bool) or not isinstance(count, int):
                    raise ServiceError(
                        f"request {request_id!r} count for {token!r} must be "
                        f"an integer, got {count!r}"
                    )
        try:
            return cls(
                request_id=request_id,
                tokens=tuple(str(token) for token in tokens)
                if tokens is not None
                else None,
                counts={str(k): int(v) for k, v in counts.items()}
                if counts is not None
                else None,
                secret=payload.get("secret"),  # type: ignore[arg-type]
                secret_fingerprint=payload.get("secret_fingerprint"),  # type: ignore[arg-type]
                config=payload.get("config"),  # type: ignore[arg-type]
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(
                f"request {request_id!r} payload is malformed: {exc}"
            ) from exc


@dataclass(frozen=True)
class DetectResponse:
    """One verdict (or failure) on the service wire.

    ``ok`` distinguishes verdicts from failures: a failure carries only
    ``error``; a verdict mirrors the
    :class:`~repro.core.detector.DetectionResult` counters and annotates
    how the request was executed — ``batch_size`` is the size of the
    coalesced ``detect_many`` batch it rode in, ``cache_hit`` whether the
    detector came from the LRU cache.
    """

    request_id: str
    ok: bool
    accepted: Optional[bool] = None
    accepted_pairs: Optional[int] = None
    required_pairs: Optional[int] = None
    total_pairs: Optional[int] = None
    batch_size: int = 0
    cache_hit: bool = False
    error: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        request_id: str,
        result: DetectionResult,
        *,
        batch_size: int,
        cache_hit: bool,
    ) -> "DetectResponse":
        """Wrap a detection result into a wire response."""
        return cls(
            request_id=request_id,
            ok=True,
            accepted=result.accepted,
            accepted_pairs=result.accepted_pairs,
            required_pairs=result.required_pairs,
            total_pairs=result.total_pairs,
            batch_size=batch_size,
            cache_hit=cache_hit,
        )

    @classmethod
    def failure(cls, request_id: str, message: str) -> "DetectResponse":
        """A failure response carrying only the error message."""
        return cls(request_id=request_id, ok=False, error=message)

    @property
    def accepted_fraction(self) -> float:
        """Fraction of stored pairs that verified (0 for failures)."""
        if not self.ok or not self.total_pairs:
            return 0.0
        return (self.accepted_pairs or 0) / self.total_pairs

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload (failure fields omitted on success)."""
        payload: Dict[str, object] = {"id": self.request_id, "ok": self.ok}
        if self.ok:
            payload.update(
                {
                    "accepted": self.accepted,
                    "accepted_pairs": self.accepted_pairs,
                    "required_pairs": self.required_pairs,
                    "total_pairs": self.total_pairs,
                    "batch_size": self.batch_size,
                    "cache_hit": self.cache_hit,
                }
            )
        else:
            payload["error"] = self.error
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DetectResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "id" not in payload:
            raise ServiceError("response payload must be a JSON object with 'id'")
        if not payload.get("ok"):
            return cls.failure(
                str(payload["id"]), str(payload.get("error", "unknown error"))
            )
        return cls(
            request_id=str(payload["id"]),
            ok=True,
            accepted=bool(payload.get("accepted")),
            accepted_pairs=int(payload.get("accepted_pairs", 0)),  # type: ignore[arg-type]
            required_pairs=int(payload.get("required_pairs", 0)),  # type: ignore[arg-type]
            total_pairs=int(payload.get("total_pairs", 0)),  # type: ignore[arg-type]
            batch_size=int(payload.get("batch_size", 0)),  # type: ignore[arg-type]
            cache_hit=bool(payload.get("cache_hit")),
            extra=dict(payload.get("extra", {})),  # type: ignore[arg-type]
        )


def encode_line(message) -> str:
    """Encode a request/response as one JSON line (no trailing newline)."""
    return json.dumps(message.to_dict(), separators=(",", ":"), sort_keys=True)


def decode_request(line: str) -> DetectRequest:
    """Decode one JSON line into a validated :class:`DetectRequest`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request line is not valid JSON: {exc}") from exc
    return DetectRequest.from_dict(payload)


def decode_response(line: str) -> DetectResponse:
    """Decode one JSON line into a :class:`DetectResponse`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"response line is not valid JSON: {exc}") from exc
    return DetectResponse.from_dict(payload)


__all__ = [
    "DetectRequest",
    "DetectResponse",
    "encode_line",
    "decode_request",
    "decode_response",
]
