"""Resident detection service: cached detectors + request coalescing.

One-shot detection pays the detector construction (SHA-256 moduli for
every stored pair) per verdict and verifies one dataset per vectorized
pass. A resident service amortises both:

* **Detector cache** — constructed detectors live in a
  :class:`~repro.service.cache.DetectorCache` keyed by the secret/config
  fingerprint, so repeated verdicts against the same watermark skip
  moduli precomputation entirely.
* **Request coalescing** — single-dataset requests land on an asyncio
  queue; a batcher drains it in small time/size windows
  (:attr:`ServiceConfig.max_delay` / :attr:`ServiceConfig.max_batch`),
  groups the window by detector, and answers each group with **one**
  vectorized :meth:`~repro.core.detector.WatermarkDetector.detect_many`
  pass. Concurrent callers therefore share matrix passes without
  coordinating with each other.
* **Shard fan-out** — when a coalesced group is large
  (:attr:`ServiceConfig.shard_min_batch`) and the service was configured
  with ``shard_workers``, the group is fanned out through a pooled
  :class:`~repro.core.sharding.ShardedDetectionPool` (one pool per
  cached detector, reusing it as the pool's in-process fallback).

Verdicts are identical to direct :meth:`WatermarkDetector.detect` — the
coalescing only changes *when* the vectorized pass runs, never its
inputs — and ``tests/test_service_properties.py`` asserts this for
arbitrary request interleavings across distinct secrets.

:class:`DetectionService` is the asyncio core; :class:`SyncDetectionService`
wraps it for synchronous library callers (the facade owns a background
event-loop thread). The JSON-lines transport on top lives in
:mod:`repro.service.server`.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import DEFAULT_CACHE_CAPACITY, CacheStats, DetectorCache
from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, SuspectData, WatermarkDetector
from repro.core.generator import WatermarkGenerator
from repro.core.secrets import WatermarkSecret
from repro.core.sharding import ShardedDetectionPool
from repro.exceptions import ReproError, ServiceError
from repro.exec.policy import ExecutionPolicy
from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import span as trace_span
from repro.service.wire import (
    AttributeRequest,
    AttributeResponse,
    DetectResponse,
    EmbedRequest,
    EmbedResponse,
    RegisterRequest,
    RegisterResponse,
    RevokeRequest,
    RevokeResponse,
    StatsRequest,
    StatsResponse,
    TaskRequest,
    TaskResult,
    WireRequest,
    WireResponse,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the resident detection service.

    Attributes
    ----------
    max_batch:
        Most requests coalesced into one ``detect_many`` window.
    max_delay:
        Seconds the batcher waits for more requests after the first one
        of a window arrives. ``0`` coalesces only what is already queued
        (pure opportunistic batching, minimum latency).
    cache_capacity:
        Detectors kept resident in the LRU cache.
    shard_workers:
        When set (> 1), coalesced groups of at least ``shard_min_batch``
        datasets are fanned out across that many worker processes.
    shard_min_batch:
        Minimum group size worth the multiprocessing dispatch overhead.
    """

    max_batch: int = 64
    max_delay: float = 0.002
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    shard_workers: Optional[int] = None
    shard_min_batch: int = 32

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ServiceError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.cache_capacity < 1:
            raise ServiceError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ServiceError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        if self.shard_min_batch < 2:
            raise ServiceError(
                f"shard_min_batch must be >= 2, got {self.shard_min_batch}"
            )


@dataclass
class ServiceStats:
    """Mutable execution counters of one service instance."""

    requests: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    largest_batch: int = 0
    sharded_batches: int = 0
    failures: int = 0
    embeds: int = 0
    registrations: int = 0
    revocations: int = 0
    attributions: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced window size (0 when nothing ran yet)."""
        return self.requests / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and ``--json`` output."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
            "sharded_batches": self.sharded_batches,
            "failures": self.failures,
            "embeds": self.embeds,
            "registrations": self.registrations,
            "revocations": self.revocations,
            "attributions": self.attributions,
        }


def _cache_view(cache: DetectorCache) -> Dict[str, object]:
    """Metrics-view extractor: a detector cache's counter snapshot."""
    return cache.stats().as_dict()


def _vault_view(registry: object) -> Dict[str, object]:
    """Metrics-view extractor: a vault registry's index statistics."""
    index_stats = getattr(registry, "index_stats", None)
    if not callable(index_stats):
        return {}
    stats = index_stats()
    as_dict = getattr(stats, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    return {
        key: value
        for key, value in vars(stats).items()
        if not key.startswith("_")
    }


@dataclass
class _Pending:
    """One queued request: its dataset, resolved detector, and future."""

    suspect: SuspectData
    detector: WatermarkDetector
    cache_hit: bool
    future: "asyncio.Future[Tuple[DetectionResult, int]]" = field(repr=False)


class DetectionService:
    """Asyncio detection service with cached detectors and coalescing.

    Examples
    --------
    >>> async def screen(datasets, secret):                # doctest: +SKIP
    ...     async with DetectionService() as service:
    ...         verdicts = await asyncio.gather(
    ...             *(service.detect(data, secret) for data in datasets)
    ...         )
    ...     return [verdict.accepted for verdict in verdicts]

    All ``detect`` coroutines awaited concurrently share coalesced
    ``detect_many`` passes; see :class:`SyncDetectionService` for the
    blocking facade.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        registry: Optional[object] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cache = DetectorCache(self.config.cache_capacity)
        self.stats = ServiceStats()
        # Surface the live counters through the telemetry plane: the
        # metrics registry keeps only weak references, so a discarded
        # service silently leaves the snapshot.
        metrics_registry().register_view("service", self.stats)
        metrics_registry().register_view(
            "detector_cache", self.cache, _cache_view
        )
        if registry is not None:
            metrics_registry().register_view("vault", registry, _vault_view)
        # The multi-tenant vault behind the register/revoke/attribute
        # verbs: anything speaking the WatermarkRegistry API (the
        # persistent SecretVault under `serve --vault`, an in-memory
        # WatermarkRegistry otherwise — created lazily on first use).
        self._vault_registry = registry
        self._vault_lock = asyncio.Lock()
        self._registry: Dict[str, Tuple[WatermarkSecret, Optional[DetectionConfig]]] = {}
        self._queue: "Optional[asyncio.Queue[Optional[_Pending]]]" = None
        self._batcher: Optional[asyncio.Task] = None
        self._closing = False
        # Shard pools are bounded like the detector cache: at most
        # cache_capacity pools stay resident, LRU-evicted (and closed, so
        # their worker processes die) beyond that.
        self._pools: "OrderedDict[str, ShardedDetectionPool]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the batcher task is accepting requests."""
        return self._batcher is not None and not self._batcher.done()

    async def start(self) -> None:
        """Spawn the batcher task (idempotent)."""
        if self.running:
            return
        self._closing = False
        self._queue = asyncio.Queue()
        self._batcher = asyncio.get_running_loop().create_task(
            self._run_batcher(), name="repro-detection-batcher"
        )

    async def stop(self) -> None:
        """Drain the queue, stop the batcher, release shard pools."""
        if self._batcher is None:
            return
        assert self._queue is not None
        # New submissions raise immediately from here on; anything that
        # still slips past the sentinel is failed below rather than left
        # with a forever-pending future.
        self._closing = True
        await self._queue.put(None)  # sentinel: drain then exit
        await self._batcher
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not None and not item.future.done():
                item.future.set_exception(
                    ServiceError("the detection service is shutting down")
                )
        self._batcher = None
        self._queue = None
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    async def __aenter__(self) -> "DetectionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Secret registry
    # ------------------------------------------------------------------ #

    def register_secret(
        self,
        secret: WatermarkSecret,
        config: Optional[DetectionConfig] = None,
    ) -> str:
        """Register a secret for fingerprint-referenced requests.

        Returns the secret's fingerprint — the key wire clients put in
        ``secret_fingerprint`` so the secret material itself never has
        to travel per request. The optional ``config`` becomes the
        default thresholds for those requests. The detector is built
        (and cached) eagerly so the first request is already warm.
        """
        fingerprint = secret.fingerprint()
        self._registry[fingerprint] = (secret, config)
        self.cache.lookup(secret, config)
        return fingerprint

    def registered_secret(
        self, fingerprint: str
    ) -> Tuple[WatermarkSecret, Optional[DetectionConfig]]:
        """Resolve a registered fingerprint (raises ServiceError if unknown)."""
        try:
            return self._registry[fingerprint]
        except KeyError:
            raise ServiceError(
                f"no secret registered under fingerprint {fingerprint!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    async def detect(
        self,
        data: SuspectData,
        secret: Optional[WatermarkSecret] = None,
        config: Optional[DetectionConfig] = None,
        *,
        secret_fingerprint: Optional[str] = None,
    ) -> DetectionResult:
        """Queue one detection request and await its verdict.

        The verdict is identical to
        ``WatermarkDetector(secret, config).detect(data)`` (without the
        per-pair evidence objects); concurrent callers are coalesced
        into shared vectorized passes. Exactly one of ``secret`` /
        ``secret_fingerprint`` must be given.
        """
        result, _batch_size = await self._enqueue(
            data, secret, config, secret_fingerprint
        )
        return result

    async def submit(self, request: WireRequest) -> WireResponse:
        """Answer one wire request (any verb); failures become failure
        responses of the matching type. Each answered request is
        wrapped in a ``service.<verb>`` span when span recording is on
        (a no-op otherwise)."""
        if isinstance(request, TaskRequest):
            # Scheduler tasks belong to `freqywm worker`
            # (repro.exec.worker); the detection service answers with a
            # typed refusal instead of an unanswered id.
            self.stats.failures += 1
            return TaskResult.failure(
                request.request_id,
                "this service serves detection verbs; 'task' lines belong "
                "to freqywm worker",
            )
        if isinstance(request, StatsRequest):
            return self._submit_stats(request)
        if isinstance(request, EmbedRequest):
            with trace_span("service.embed"):
                return await self._submit_embed(request)
        if isinstance(request, (RegisterRequest, RevokeRequest, AttributeRequest)):
            verb = type(request).__name__.replace("Request", "").lower()
            with trace_span(f"service.{verb}"):
                return await self._submit_vault(request)
        with trace_span("service.detect"):
            return await self._submit_detect(request)

    def _submit_stats(self, request: StatsRequest) -> StatsResponse:
        """Answer a ``stats`` request with the registry's two expositions."""
        try:
            registry = metrics_registry()
            return StatsResponse(
                request_id=request.request_id,
                metrics=registry.snapshot(),
                prometheus=registry.render_prometheus(),
            )
        except Exception as error:  # noqa: BLE001 - wire contract: a failure
            # response, never an unanswered id.
            self.stats.failures += 1
            return StatsResponse.failure(
                request.request_id,
                f"internal error: {type(error).__name__}: {error}",
            )

    async def _submit_detect(self, request: WireRequest) -> WireResponse:
        """Answer one detect request (the default wire verb)."""
        try:
            pending_input = request.suspect()
            (result, batch_size), cache_hit = await self._enqueue_with_hit(
                pending_input,
                request.inline_secret(),
                request.detection_config(),
                request.secret_fingerprint,
            )
        except ReproError as error:
            self.stats.failures += 1
            return DetectResponse.failure(request.request_id, str(error))
        except Exception as error:  # noqa: BLE001 - wire contract: a failure
            # response, never an unanswered id or a dead transport (e.g. a
            # broken worker pool surfacing through the sharded path).
            self.stats.failures += 1
            return DetectResponse.failure(
                request.request_id,
                f"internal error: {type(error).__name__}: {error}",
            )
        return DetectResponse.from_result(
            request.request_id, result, batch_size=batch_size, cache_hit=cache_hit
        )

    async def _submit_embed(self, request: EmbedRequest) -> EmbedResponse:
        """Answer one embed request; generation runs in the executor.

        Embedding is CPU-heavy (eligibility scan + selection) and has no
        cross-request state to coalesce when every request samples its
        own secret, so each request becomes one executor job — the event
        loop (and the detection batcher) stays responsive throughout.
        """
        if not self.running or self._closing:
            self.stats.failures += 1
            return EmbedResponse.failure(
                request.request_id, "the detection service is not running"
            )
        try:
            response = await asyncio.get_running_loop().run_in_executor(
                None, self._embed_sync, request
            )
        except ReproError as error:
            self.stats.failures += 1
            return EmbedResponse.failure(request.request_id, str(error))
        except Exception as error:  # noqa: BLE001 - wire contract: a failure
            # response, never an unanswered id or a dead transport.
            self.stats.failures += 1
            return EmbedResponse.failure(
                request.request_id,
                f"internal error: {type(error).__name__}: {error}",
            )
        self.stats.embeds += 1
        return response

    def _embed_sync(self, request: EmbedRequest) -> EmbedResponse:
        """Decode, run ``WM_Generate`` and wrap the result (worker thread)."""
        generator = WatermarkGenerator(request.generation_config(), rng=request.seed)
        result = generator.generate(request.data(), secret_value=request.secret_value)
        return EmbedResponse.from_result(
            request.request_id, result, include_tokens=request.return_tokens
        )

    # ------------------------------------------------------------------ #
    # Vault verbs (register / revoke / attribute)
    # ------------------------------------------------------------------ #

    @property
    def vault(self) -> object:
        """The multi-tenant registry behind the vault verbs.

        An in-memory :class:`~repro.dispute.registry.WatermarkRegistry`
        is created lazily when the service was not given a persistent
        one; the import is deferred so detect/embed-only deployments
        never pull in the dispute layer.
        """
        if self._vault_registry is None:
            from repro.dispute.registry import WatermarkRegistry

            self._vault_registry = WatermarkRegistry()
            metrics_registry().register_view(
                "vault", self._vault_registry, _vault_view
            )
        return self._vault_registry

    async def _submit_vault(
        self, request: "RegisterRequest | RevokeRequest | AttributeRequest"
    ) -> WireResponse:
        """Answer one vault verb; every failure becomes a failure response.

        Vault mutations are chained ledger appends (and, for a
        persistent vault, file writes), so all three verbs serialise on
        one lock; attribution's vectorized screen runs in the executor
        to keep the detection batcher responsive.
        """
        failure = type(request).__name__.replace("Request", "Response")
        failure_type = {
            "RegisterResponse": RegisterResponse,
            "RevokeResponse": RevokeResponse,
            "AttributeResponse": AttributeResponse,
        }[failure]
        if not self.running or self._closing:
            self.stats.failures += 1
            return failure_type.failure(
                request.request_id, "the detection service is not running"
            )
        try:
            async with self._vault_lock:
                return await asyncio.get_running_loop().run_in_executor(
                    None, self._vault_sync, request
                )
        except ReproError as error:
            self.stats.failures += 1
            return failure_type.failure(request.request_id, str(error))
        except Exception as error:  # noqa: BLE001 - wire contract: a failure
            # response, never an unanswered id or a dead transport.
            self.stats.failures += 1
            return failure_type.failure(
                request.request_id,
                f"internal error: {type(error).__name__}: {error}",
            )

    def _vault_sync(
        self, request: "RegisterRequest | RevokeRequest | AttributeRequest"
    ) -> WireResponse:
        """Run one vault verb against the registry (worker thread)."""
        registry = self.vault
        if isinstance(request, RegisterRequest):
            entry = registry.register(
                request.buyer_id, request.watermark_secret(), **request.metadata
            )
            self.stats.registrations += 1
            return RegisterResponse(
                request_id=request.request_id,
                ok=True,
                buyer_id=entry.buyer_id,
                fingerprint=entry.fingerprint,
                vault_size=len(registry.active_buyers),
            )
        if isinstance(request, RevokeRequest):
            entry = registry.revoke(request.buyer_id, **request.metadata)
            self.stats.revocations += 1
            return RevokeResponse(
                request_id=request.request_id,
                ok=True,
                buyer_id=entry.buyer_id,
                fingerprint=entry.fingerprint,
                vault_size=len(registry.active_buyers),
            )
        matches = registry.attribute_leak(
            request.suspect(), detection=request.detection_config()
        )
        self.stats.attributions += 1
        screen = registry.last_attribution
        return AttributeResponse(
            request_id=request.request_id,
            ok=True,
            matches=tuple(matches),
            mode=screen.mode if screen is not None else None,
            candidates=screen.candidates if screen is not None else None,
            active_secrets=screen.active_secrets if screen is not None else None,
        )

    async def _enqueue(
        self,
        data: SuspectData,
        secret: Optional[WatermarkSecret],
        config: Optional[DetectionConfig],
        secret_fingerprint: Optional[str],
    ) -> Tuple[DetectionResult, int]:
        outcome, _hit = await self._enqueue_with_hit(
            data, secret, config, secret_fingerprint
        )
        return outcome

    async def _enqueue_with_hit(
        self,
        data: SuspectData,
        secret: Optional[WatermarkSecret],
        config: Optional[DetectionConfig],
        secret_fingerprint: Optional[str],
    ) -> Tuple[Tuple[DetectionResult, int], bool]:
        if not self.running or self._closing or self._queue is None:
            raise ServiceError("the detection service is not running")
        if (secret is None) == (secret_fingerprint is None):
            raise ServiceError(
                "exactly one of secret / secret_fingerprint must be given"
            )
        if secret is None:
            assert secret_fingerprint is not None
            secret, registered_config = self.registered_secret(secret_fingerprint)
            config = config if config is not None else registered_config
        detector, cache_hit = self.cache.lookup(secret, config)
        future: "asyncio.Future[Tuple[DetectionResult, int]]" = (
            asyncio.get_running_loop().create_future()
        )
        await self._queue.put(
            _Pending(suspect=data, detector=detector, cache_hit=cache_hit, future=future)
        )
        return await future, cache_hit

    # ------------------------------------------------------------------ #
    # Batcher
    # ------------------------------------------------------------------ #

    async def _run_batcher(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            if first is None:
                return
            window = [first]
            stopping = False
            deadline = loop.time() + self.config.max_delay
            while len(window) < self.config.max_batch and not stopping:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window expired: opportunistically drain whatever is
                    # already queued (this is the whole behaviour when
                    # max_delay is 0) without waiting further.
                    while len(window) < self.config.max_batch and not queue.empty():
                        item = queue.get_nowait()
                        if item is None:
                            stopping = True
                            break
                        window.append(item)
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), timeout=timeout)
                except asyncio.TimeoutError:
                    break
                if item is None:
                    stopping = True
                    break
                window.append(item)
            await self._execute_window(window, loop)
            if stopping:
                return

    async def _execute_window(
        self, window: List[_Pending], loop: asyncio.AbstractEventLoop
    ) -> None:
        """Group one coalesced window by detector and run each group."""
        self.stats.requests += len(window)
        if len(window) > 1:
            self.stats.coalesced_requests += len(window)
        self.stats.largest_batch = max(self.stats.largest_batch, len(window))
        groups: Dict[str, List[_Pending]] = {}
        detectors: Dict[str, WatermarkDetector] = {}
        for pending in window:
            key = pending.detector.fingerprint
            groups.setdefault(key, []).append(pending)
            detectors[key] = pending.detector
        for key, group in groups.items():
            self.stats.batches += 1
            suspects = [pending.suspect for pending in group]
            try:
                results = await loop.run_in_executor(
                    None, self._detect_group, detectors[key], suspects
                )
            except Exception as error:  # propagate to every caller of the group
                self.stats.failures += len(group)
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, result in zip(group, results):
                if not pending.future.done():
                    pending.future.set_result((result, len(group)))

    def _detect_group(
        self, detector: WatermarkDetector, suspects: Sequence[SuspectData]
    ) -> List[DetectionResult]:
        """One vectorized pass (optionally sharded) over a detector group."""
        workers = self.config.shard_workers
        if (
            workers is not None
            and workers > 1
            and len(suspects) >= self.config.shard_min_batch
        ):
            pool = self._pools.get(detector.fingerprint)
            if pool is None:
                pool = ShardedDetectionPool(
                    detector.secret,
                    detector.config,
                    policy=ExecutionPolicy(workers=workers),
                    local_detector=detector,
                )
                self._pools[detector.fingerprint] = pool
                while len(self._pools) > self.config.cache_capacity:
                    _key, evicted = self._pools.popitem(last=False)
                    evicted.close()
            else:
                self._pools.move_to_end(detector.fingerprint)
            self.stats.sharded_batches += 1
            return list(pool.detect_many(suspects).results)
        return detector.detect_many(suspects)

    def cache_stats(self) -> CacheStats:
        """Snapshot of the detector cache counters."""
        return self.cache.stats()


class SyncDetectionService:
    """Blocking facade over :class:`DetectionService`.

    Owns a daemon thread running a private event loop, so synchronous
    library code (and threads) can share one resident service. Requests
    issued from multiple threads — or fired with :meth:`detect_all` —
    coalesce exactly like concurrent asyncio callers.

    Examples
    --------
    >>> with SyncDetectionService() as service:           # doctest: +SKIP
    ...     verdict = service.detect(tokens, secret)
    ...     verdicts = service.detect_all(datasets, secret)
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        registry: Optional[object] = None,
    ) -> None:
        self._service = DetectionService(config, registry=registry)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-detection-service", daemon=True
        )
        self._started = False

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> "SyncDetectionService":
        """Start the loop thread and the service (idempotent)."""
        if not self._started:
            self._thread.start()
            self._call(self._service.start())
            self._started = True
        return self

    def close(self) -> None:
        """Stop the service and tear down the loop thread (idempotent)."""
        if not self._started:
            return
        self._call(self._service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._started = False

    def __enter__(self) -> "SyncDetectionService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- delegation ----------------------------------------------------- #

    @property
    def config(self) -> ServiceConfig:
        """The service's knobs."""
        return self._service.config

    @property
    def stats(self) -> ServiceStats:
        """The service's execution counters."""
        return self._service.stats

    def cache_stats(self) -> CacheStats:
        """Snapshot of the detector cache counters."""
        return self._service.cache_stats()

    def register_secret(
        self, secret: WatermarkSecret, config: Optional[DetectionConfig] = None
    ) -> str:
        """Register a secret for fingerprint-referenced requests."""
        return self._service.register_secret(secret, config)

    def detect(
        self,
        data: SuspectData,
        secret: Optional[WatermarkSecret] = None,
        config: Optional[DetectionConfig] = None,
        *,
        secret_fingerprint: Optional[str] = None,
    ) -> DetectionResult:
        """Blocking single verdict (coalesces with concurrent callers)."""
        return self._call(
            self._service.detect(
                data, secret, config, secret_fingerprint=secret_fingerprint
            )
        )

    def detect_all(
        self,
        datasets: Sequence[SuspectData],
        secret: Optional[WatermarkSecret] = None,
        config: Optional[DetectionConfig] = None,
        *,
        secret_fingerprint: Optional[str] = None,
    ) -> List[DetectionResult]:
        """Fire many single-dataset requests at once and await them all.

        Every request goes through the normal coalescing queue — this is
        the synchronous way to hand the service a concurrent burst — and
        verdicts come back in input order.
        """

        async def _gather() -> List[DetectionResult]:
            return list(
                await asyncio.gather(
                    *(
                        self._service.detect(
                            data, secret, config, secret_fingerprint=secret_fingerprint
                        )
                        for data in datasets
                    )
                )
            )

        return self._call(_gather())

    @property
    def vault(self) -> object:
        """The multi-tenant registry behind the vault verbs."""
        return self._service.vault

    def submit(self, request: WireRequest) -> WireResponse:
        """Blocking wire-level submission (any verb)."""
        return self._call(self._service.submit(request))


__all__ = [
    "ServiceConfig",
    "ServiceStats",
    "DetectionService",
    "SyncDetectionService",
]
