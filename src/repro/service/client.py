"""Synchronous JSON-lines client for the detection service.

Speaks the :mod:`repro.service.wire` format against either transport:

* :meth:`ServiceClient.connect_unix` — connect to a running
  ``freqywm serve --socket PATH`` instance;
* :meth:`ServiceClient.spawn` — spawn a private ``freqywm serve``
  subprocess speaking stdio, so one-shot clients need no pre-started
  daemon (this is what ``freqywm client`` does by default).

The client pipelines: all requests are written before responses are
collected, so the server coalesces them into shared vectorized passes. A
background reader thread drains responses while requests are still being
written, which keeps large pipelined bursts deadlock-free on bounded
OS pipe buffers. Responses may arrive in any order; :meth:`request`
re-orders them by the echoed request id.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Union

from repro.exceptions import ServiceError
from repro.service.wire import (
    WireRequest,
    WireResponse,
    decode_response,
    encode_line,
)


def _repro_pythonpath() -> str:
    """PYTHONPATH for spawned servers: the directory containing ``repro``."""
    import repro

    package_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH")
    return package_dir if not existing else os.pathsep.join([package_dir, existing])


class ServiceClient:
    """One JSON-lines conversation with a detection server.

    Construct via :meth:`connect_unix` or :meth:`spawn`; use as a context
    manager to guarantee the connection (and any spawned server process)
    is torn down.
    """

    def __init__(
        self,
        reader: IO[str],
        writer: IO[str],
        *,
        process: Optional[subprocess.Popen] = None,
        sock: Optional[socket.socket] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._process = process
        self._socket = sock

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def connect_unix(cls, socket_path: Union[str, Path]) -> "ServiceClient":
        """Connect to a server listening on a Unix domain socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(str(socket_path))
        except OSError as error:
            sock.close()
            raise ServiceError(
                f"cannot connect to detection server at {socket_path!s}: {error}"
            ) from error
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        return cls(reader, writer, sock=sock)

    @classmethod
    def spawn(cls, serve_arguments: Sequence[str] = ()) -> "ServiceClient":
        """Spawn a private ``freqywm serve`` subprocess speaking stdio.

        ``serve_arguments`` are appended to the ``serve`` subcommand
        (e.g. ``["--secret", "owner.json", "--max-batch", "128"]``).
        """
        command = [sys.executable, "-m", "repro.cli", "serve", *serve_arguments]
        environment = dict(os.environ, PYTHONPATH=_repro_pythonpath())
        process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=environment,
            text=True,
        )
        assert process.stdin is not None and process.stdout is not None
        return cls(process.stdout, process.stdin, process=process)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the conversation and reap any spawned server (idempotent)."""
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except OSError:  # pragma: no cover - double close on sockets
                pass
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        if self._process is not None:
            self._process.wait(timeout=30)
            self._process = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    def request(self, requests: Sequence[WireRequest]) -> List[WireResponse]:
        """Send a pipelined burst and return responses in request order.

        Detect and embed requests mix freely within one burst. All
        request lines are written up front (so the server coalesces the
        burst's detections) while a reader thread drains responses
        concurrently; the call returns once every request has been
        answered.
        """
        if not requests:
            return []
        expected = [request.request_id for request in requests]
        if len(set(expected)) != len(expected):
            raise ServiceError("request ids within one burst must be unique")
        by_id: Dict[str, WireResponse] = {}
        failure: List[Exception] = []

        def drain() -> None:
            try:
                while len(by_id) < len(expected):
                    line = self._reader.readline()
                    if not line:
                        raise ServiceError(
                            "detection server closed the connection mid-burst"
                        )
                    line = line.strip()
                    if not line:
                        continue
                    response = decode_response(line)
                    by_id[response.request_id] = response
            except Exception as error:  # surfaced after join
                failure.append(error)

        reader_thread = threading.Thread(target=drain, daemon=True)
        reader_thread.start()
        for request in requests:
            self._writer.write(encode_line(request) + "\n")
        self._writer.flush()
        reader_thread.join()
        if failure:
            raise failure[0]
        missing = [request_id for request_id in expected if request_id not in by_id]
        if missing:  # pragma: no cover - defensive: drain guarantees coverage
            raise ServiceError(f"no response for request ids {missing}")
        return [by_id[request_id] for request_id in expected]


__all__ = ["ServiceClient"]
