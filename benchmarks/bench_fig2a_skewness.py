"""Figure 2a — chosen pairs versus dataset skewness α.

Paper setting: power-law datasets with α ∈ {0.05, 0.2, 0.5, 0.7, 0.9, 1.0},
1 M samples over 1 k tokens, budget b = 2, modulus cap z = 1031. Expected
shape: very few pairs at α ≈ 0 (near-uniform data), a rise as the
frequency gaps widen, a drop again once the tail flattens, and the optimal
strategy beating both heuristics by roughly 20 % while greedy and random
stay close to each other.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.datasets.synthetic import PAPER_ALPHA_SWEEP, generate_power_law_histogram

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 1031
STRATEGIES = ("optimal", "greedy", "random")


def _chosen_pairs_by_alpha(scale) -> list:
    rows = []
    for alpha in PAPER_ALPHA_SWEEP:
        histogram = generate_power_law_histogram(
            alpha,
            n_tokens=scale.synthetic_tokens,
            sample_size=scale.synthetic_samples,
            mode="sampled",
            rng=1_000 + int(alpha * 100),
        )
        row = {"alpha": alpha}
        for strategy in STRATEGIES:
            config = GenerationConfig(
                budget_percent=BUDGET, modulus_cap=MODULUS_CAP, strategy=strategy
            )
            result = WatermarkGenerator(config, rng=7).generate(histogram)
            row[strategy] = result.pair_count
            row[f"{strategy}_eligible"] = len(result.eligible_pairs)
        rows.append(row)
    return rows


def test_fig2a_chosen_pairs_vs_skewness(benchmark, scale):
    """Regenerate the Figure 2a series and check its qualitative shape."""
    rows = benchmark.pedantic(
        _chosen_pairs_by_alpha, args=(scale,), rounds=1, iterations=1
    )
    experiment_banner(
        "Figure 2a",
        f"chosen pairs vs skewness α (b={BUDGET}, z={MODULUS_CAP}, scale={scale.name})",
    )
    print(  # noqa: T201
        format_table(
            rows,
            columns=["alpha", "optimal", "greedy", "random", "optimal_eligible"],
            float_digits=2,
        )
    )

    by_alpha = {row["alpha"]: row for row in rows}
    # Near-uniform data yields (almost) no usable pairs.
    assert by_alpha[0.05]["optimal"] <= by_alpha[0.5]["optimal"]
    # Optimal dominates both heuristics at every skewness level.
    for row in rows:
        assert row["optimal"] >= row["greedy"]
        assert row["optimal"] >= row["random"]
    # Mid-range skewness supports a non-trivial watermark.
    assert by_alpha[0.5]["optimal"] > 0
