"""Batch embedding engine — amortised ``WM_Generate`` at fleet scale.

Not a paper figure: this benchmark guards the batch embedding engine
(PR 4) against functional and performance regression.

* **Amortisation**: embedding ≥100 datasets that share one owner secret
  and one token vocabulary (corpus snapshots, per-buyer copies) through
  :func:`repro.core.batch.embed_many` must produce results *bit-identical*
  to the sequential ``WatermarkGenerator.generate`` loop while paying the
  SHA-256 pair-modulus derivations once for the whole batch (shared
  :class:`~repro.core.hashing.PairModulusCache` + vectorized
  :class:`~repro.core.eligibility.PairScanPlan` scans instead of a
  quadratic Python loop per dataset). The speedup gate is ≥3x.

  The workload uses the ``greedy`` selection strategy: pair selection is
  per-dataset work no batch can amortise, and the gate must measure the
  amortised derivation pipeline, not the (orthogonal) cost of the MWM
  solver.
* **Sharded embedding**: the same batch through worker processes
  (:class:`~repro.core.embedding.ShardedEmbeddingPool`) must return
  bit-identical results in input order, and must beat the in-process
  path on wall clock when the machine actually has cores to shard
  across.

Run directly (``python benchmarks/bench_embed_many.py``) or via pytest;
the CI smoke job includes the timings in ``BENCH_smoke.json`` and
``tools/compare_bench.py`` tracks them across runs.
"""

from __future__ import annotations

import os
import time
import warnings

from repro.core.batch import embed_many
from repro.core.config import GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.core.sharding import default_worker_count
from repro.exec.policy import ExecutionPolicy

from bench_utils import experiment_banner

OWNER_SECRET = 0x0DDB175
SEED = 7
DATASET_COUNT = 120
SHARD_WORKERS = 4


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _config() -> GenerationConfig:
    return GenerationConfig(strategy="greedy")


def _fleet(count: int, tokens: int):
    """``count`` corpus snapshots: shared vocabulary, drifting counts.

    Counts are strictly descending with unit gaps, the regime where the
    boundary pre-filter keeps every token a candidate — so the quadratic
    modulus derivation dominates sequential embedding, exactly the cost
    the batch engine amortises.
    """
    return [
        TokenHistogram.from_counts(
            {f"tok{i:04d}": 5_000 + snapshot - i for i in range(tokens)}
        )
        for snapshot in range(count)
    ]


def _results_identical(left, right) -> bool:
    return (
        left.watermarked_histogram == right.watermarked_histogram
        and left.secret == right.secret
        and left.selection == right.selection
        and left.adjustments == right.adjustments
        and left.eligible_pairs == right.eligible_pairs
    )


def test_batch_embedding_amortisation():
    """Batched embedding: bit-identical to sequential, >=3x throughput."""
    tokens = 150 if _smoke() else 220
    datasets = _fleet(DATASET_COUNT, tokens)
    config = _config()

    generator = WatermarkGenerator(config, rng=SEED)
    start = time.perf_counter()
    sequential = [
        generator.generate(data, secret_value=OWNER_SECRET) for data in datasets
    ]
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = embed_many(datasets, config, rng=SEED, secret_value=OWNER_SECRET)
    batched_seconds = time.perf_counter() - start

    assert len(report) == len(sequential)
    for left, right in zip(sequential, report.results):
        assert _results_identical(left, right), "batched embedding diverged"
    # Every embedding must actually verify — the speedup is worthless
    # otherwise.
    sample = report.results[0]
    assert WatermarkDetector(sample.secret).detect(
        sample.watermarked_histogram
    ).accepted

    speedup = sequential_seconds / max(batched_seconds, 1e-9)
    experiment_banner(
        "Batch embedding",
        f"{len(datasets)} datasets x {tokens} tokens, one owner secret",
    )
    print(  # noqa: T201
        f"  sequential loop: {sequential_seconds:.2f} s   "
        f"embed_many: {batched_seconds:.2f} s   speedup: {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"batched embedding amortisation regressed: {speedup:.2f}x "
        f"(sequential {sequential_seconds:.2f}s, batched {batched_seconds:.2f}s)"
    )


def test_sharded_embedding_parity_and_speedup():
    """Worker-sharded embedding: identical results, faster on multi-core."""
    tokens = 120 if _smoke() else 200
    count = 60 if _smoke() else DATASET_COUNT
    datasets = _fleet(count, tokens)
    config = _config()

    start = time.perf_counter()
    baseline = embed_many(datasets, config, rng=SEED, secret_value=OWNER_SECRET)
    in_process_seconds = time.perf_counter() - start

    with warnings.catch_warnings():
        # Spawn-restricted environments fall back in-process (warning);
        # the parity assertions below must hold regardless.
        warnings.simplefilter("ignore", RuntimeWarning)
        start = time.perf_counter()
        sharded = embed_many(
            datasets,
            config,
            rng=SEED,
            secret_value=OWNER_SECRET,
            policy=ExecutionPolicy(workers=SHARD_WORKERS),
        )
        sharded_seconds = time.perf_counter() - start

    assert len(sharded) == len(baseline)
    for left, right in zip(baseline.results, sharded.results):
        assert _results_identical(left, right), "sharded embedding diverged"

    cores = default_worker_count()
    speedup = in_process_seconds / max(sharded_seconds, 1e-9)
    experiment_banner(
        "Sharded embedding",
        f"{count} datasets through {SHARD_WORKERS} workers ({cores} cores visible)",
    )
    print(  # noqa: T201
        f"  in-process: {in_process_seconds:.2f} s   "
        f"sharded: {sharded_seconds:.2f} s   speedup: {speedup:.2f}x"
    )
    if cores >= 2 and not _smoke():
        # Gated like the sharded-screening benchmark: a 1-core machine
        # cannot win, and a perf assert that flakes on loaded shared
        # runners would be worse than none.
        assert speedup > 1.0, (
            f"sharded embedding lost to in-process on a {cores}-core machine: "
            f"{sharded_seconds:.2f}s vs {in_process_seconds:.2f}s"
        )
    else:
        print(  # noqa: T201
            "  (speedup assertion gated: needs >=2 visible cores and "
            "full-scale workload; parity asserted above)"
        )


if __name__ == "__main__":
    test_batch_embedding_amortisation()
    test_sharded_embedding_parity_and_speedup()
