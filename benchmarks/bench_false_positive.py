"""Section III-B4 — false-positive probability analysis.

The paper derives a Markov bound ``P(S_n >= k) <= mu / k`` for the
probability of "detecting" a watermark on data that does not carry it, and
evaluates the exact Poisson-Binomial survival function (via the DFT of its
characteristic function) for n = 50 pairs with uniform per-pair
probabilities. Expected shape: the survival probability falls to ~0 as k
approaches n, decreasing t drives the false-positive probability to zero,
and the Markov bound always dominates the exact probability.
"""

from __future__ import annotations


from repro.analysis.false_positive import (
    empirical_false_positive_rate,
    false_positive_bound,
    markov_bound,
    pair_false_positive_probability,
    poisson_binomial_survival,
    survival_curve,
    uniform_probability_profile,
)
from repro.analysis.reporting import format_table

from bench_utils import experiment_banner

N_PAIRS = 50


def _false_positive_analysis() -> dict:
    # 1. The paper's n = 50 survival curve with Uniform[0,1] probabilities.
    profile = uniform_probability_profile(N_PAIRS, rng=77)
    curve = survival_curve(profile.pair_probabilities)
    curve_rows = [
        {"k": k, "survival": float(curve[k]), "markov_bound": profile.markov_probability(k)}
        for k in (0, 5, 10, 20, 30, 40, 45, 50)
    ]

    # 2. Behaviour in t for a realistic modulus (z = 131 regime).
    threshold_rows = []
    for threshold in (20, 10, 4, 2, 1, 0):
        per_pair = pair_false_positive_probability(131, threshold)
        threshold_rows.append(
            {
                "t": threshold,
                "per_pair_probability": per_pair,
                "exact_P(Sn>=k)": poisson_binomial_survival([per_pair] * N_PAIRS, 10),
                "markov_bound": false_positive_bound(N_PAIRS, 10, modulus=131, threshold=threshold),
            }
        )

    # 3. Monte-Carlo cross-check of the exact computation.
    moduli = [131] * N_PAIRS
    empirical = empirical_false_positive_rate(moduli, threshold=4, k=5, trials=4000, rng=11)
    exact = poisson_binomial_survival(
        [pair_false_positive_probability(131, 4)] * N_PAIRS, 5
    )
    return {
        "curve_rows": curve_rows,
        "threshold_rows": threshold_rows,
        "empirical": empirical,
        "exact": exact,
    }


def test_false_positive_bounds(benchmark):
    """Regenerate the Section III-B4 false-positive analysis."""
    report = benchmark.pedantic(_false_positive_analysis, rounds=1, iterations=1)
    experiment_banner("Section III-B4", "false-positive probability bounds")
    print(format_table(report["curve_rows"], title="Survival P(Sn >= k), n = 50, p ~ U[0,1]"))  # noqa: T201
    print()  # noqa: T201
    print(  # noqa: T201
        format_table(
            report["threshold_rows"],
            title="Effect of the per-pair threshold t (z = 131, k = 10, n = 50)",
            float_digits=6,
        )
    )
    print(  # noqa: T201
        f"\nMonte-Carlo cross-check (t=4, k=5): empirical={report['empirical']:.4f} "
        f"exact={report['exact']:.4f}"
    )

    curve = {row["k"]: row for row in report["curve_rows"]}
    # Survival starts at 1, ends at ~0 (the paper's n = 50 observation).
    assert curve[0]["survival"] == 1.0
    assert curve[50]["survival"] < 0.01
    # Markov bound dominates the exact probability everywhere.
    for row in report["curve_rows"]:
        assert row["markov_bound"] + 1e-9 >= row["survival"]
    # Decreasing t drives the false-positive probability towards zero.
    probabilities = [row["exact_P(Sn>=k)"] for row in report["threshold_rows"]]
    assert probabilities == sorted(probabilities, reverse=True)
    assert report["threshold_rows"][-1]["exact_P(Sn>=k)"] < 1e-6
    # The Monte-Carlo estimate agrees with the exact computation.
    assert abs(report["empirical"] - report["exact"]) < 0.05
