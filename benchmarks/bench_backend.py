"""Backend dispatch overhead — the pluggable-kernel refactor must be free.

Not a paper figure: this benchmark guards the compute-backend protocol
(:mod:`repro.core.backend`) against performance regression. Routing the
detection kernels through :class:`~repro.core.backend.NumpyBackend` adds
a dispatch layer between ``detect_many`` and the NumPy calls that used to
be inline; this gate proves the layer costs nothing measurable.

* **Pre-refactor baseline**: an inline reimplementation of the screen as
  ``detect_many`` computed it before the backend protocol existed — the
  same :func:`~repro.core.arrays.frequency_matrix` gather followed by the
  raw NumPy stacked-modulo pass, no dispatch, no host/device hooks.
* **Gate**: the backend-routed ``detect_many`` screen over 10k suspects
  must produce identical accepted-pair counts and run no slower than
  1.5x the inline pass (generous headroom for loaded shared runners; the
  two paths execute the same NumPy kernels, so the true ratio is ~1.0).

Every other importable backend is timed and parity-checked too (the
CuPy backend on GPU machines), but only NumPy — the default — is gated.

Run directly (``python benchmarks/bench_backend.py``) or via pytest; the
CI smoke job includes the timings in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.core.arrays import frequency_matrix
from repro.core.backend import available_backends
from repro.core.batch import detect_many
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector
from repro.core.generator import WatermarkGenerator
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram

from bench_utils import experiment_banner

OWNER_SECRET = 0xBEEFCAFE
SEED = 11
SUSPECT_COUNT = 10_000
TOKENS = 150


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _workload():
    """One watermarked corpus and a fleet of suspect variants."""
    base = TokenHistogram.from_counts(
        {f"tok{i:04d}": 4_000 + (TOKENS - i) * 7 for i in range(TOKENS)}
    )
    result = WatermarkGenerator(rng=SEED).generate(base, secret_value=OWNER_SECRET)
    count = 2_000 if _smoke() else SUSPECT_COUNT
    # Mix of positives (scaled watermarked copies) and negatives
    # (scaled originals) — scaling reuses the fast array path, so the
    # screen itself dominates the benchmark, not suspect construction.
    suspects = [
        (result.watermarked_histogram if index % 2 else base).scaled(
            1.0 + 0.00005 * index
        )
        for index in range(count)
    ]
    return result.secret, suspects


def _inline_screen(suspects, secret, config: DetectionConfig) -> List[int]:
    """The screen exactly as pre-backend ``detect_many`` ran it.

    Same gather, same stacked NumPy modulo, no backend dispatch:
    accepted-pair counts per suspect.
    """
    cache = PairModulusCache(secret.secret, secret.modulus_cap)
    moduli = np.array(
        [cache.modulus(pair.first, pair.second) for pair in secret.pairs],
        dtype=np.int64,
    )
    valid = moduli >= 2
    safe_moduli = np.where(valid, moduli, 1)
    thresholds = np.full(moduli.size, config.pair_threshold, dtype=np.int64)
    tokens: List[str] = []
    positions: Dict[str, int] = {}
    for pair in secret.pairs:
        for token in (pair.first, pair.second):
            if token not in positions:
                positions[token] = len(tokens)
                tokens.append(token)
    first_columns = np.fromiter(
        (positions[pair.first] for pair in secret.pairs), dtype=np.intp
    )
    second_columns = np.fromiter(
        (positions[pair.second] for pair in secret.pairs), dtype=np.intp
    )
    matrix = frequency_matrix([suspect.arrays() for suspect in suspects], tokens)
    first = matrix[:, first_columns]
    second = matrix[:, second_columns]
    present = (first > 0) & (second > 0)
    remainder = (first - second) % safe_moduli
    accepted = present & valid & (remainder <= thresholds)
    return [int(row) for row in accepted.sum(axis=1)]


def test_backend_dispatch_is_free():
    """NumPy-backend ``detect_many``: identical counts, no slower than inline."""
    secret, suspects = _workload()
    config = DetectionConfig()

    start = time.perf_counter()
    inline_counts = _inline_screen(suspects, secret, config)
    inline_seconds = time.perf_counter() - start

    timings: Dict[str, float] = {}
    for backend_name in available_backends():
        detector = WatermarkDetector(secret, config, backend=backend_name)
        start = time.perf_counter()
        report = detect_many(suspects, detector=detector)
        timings[backend_name] = time.perf_counter() - start
        assert len(report) == len(suspects)
        assert [result.accepted_pairs for result in report] == inline_counts, (
            f"backend {backend_name!r} diverged from the inline screen"
        )

    engine_seconds = timings["numpy"]
    ratio = engine_seconds / max(inline_seconds, 1e-9)
    experiment_banner(
        "Backend dispatch",
        f"{len(suspects)} suspects x {len(secret.pairs)} pairs",
    )
    print(  # noqa: T201
        f"  inline (pre-refactor): {inline_seconds:.3f} s   "
        + "   ".join(
            f"{name}: {seconds:.3f} s" for name, seconds in timings.items()
        )
        + f"   numpy/inline: {ratio:.2f}x"
    )
    assert ratio <= 1.5, (
        f"backend dispatch regressed the screen: numpy backend took "
        f"{engine_seconds:.3f}s vs inline {inline_seconds:.3f}s "
        f"({ratio:.2f}x, gate 1.5x)"
    )


if __name__ == "__main__":
    test_backend_dispatch_is_free()
