"""Table II — validation on (stand-ins for) the paper's real datasets.

Paper setting: Chicago Taxi (token = Taxi ID), eyeWnder click-stream
(token = URL) and UCI Adult (token = Age), watermarked with z = 131 and
b = 2. The table reports distinct tokens, |L_e|, the pairs chosen by the
optimal / greedy / random strategies, and the generation / detection
wall-clock times. Expected shape: more eligible pairs mean more chosen
pairs (Taxi ≫ eyeWnder ≫ Adult), the heuristics land close behind the
optimal, detection is orders of magnitude faster than generation, and the
Adult dataset is processed almost instantly.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.detector import detect_watermark
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.datasets.adult import AdultSpec, adult_age_tokens, generate_adult_dataset
from repro.datasets.clickstream import ClickstreamSpec, clickstream_tokens, generate_clickstream
from repro.datasets.taxi import TaxiSpec, generate_taxi_dataset, taxi_tokens

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131
STRATEGIES = ("optimal", "greedy", "random")


def _build_datasets(scale):
    """Generate the three stand-in datasets at the active scale."""
    taxi = generate_taxi_dataset(
        TaxiSpec(n_taxis=scale.taxi_taxis, n_trips=scale.taxi_trips), rng=101
    )
    clicks = generate_clickstream(
        ClickstreamSpec(
            n_urls=scale.clickstream_urls,
            n_users=max(20, scale.clickstream_urls // 10),
            n_events=scale.clickstream_events,
        ),
        rng=102,
    )
    adult = generate_adult_dataset(AdultSpec(n_rows=scale.adult_rows), rng=103)
    return {
        "chicago-taxi (Taxi ID)": taxi_tokens(taxi),
        "eyewnder (URL)": clickstream_tokens(clicks),
        "adult (Age)": adult_age_tokens(adult),
    }


def _validate_datasets(scale) -> list:
    rows = []
    for name, tokens in _build_datasets(scale).items():
        histogram = TokenHistogram.from_tokens(tokens)
        row = {
            "dataset": name,
            "size": len(tokens),
            "distinct_tokens": len(histogram),
        }
        detect_seconds = None
        for strategy in STRATEGIES:
            config = GenerationConfig(
                budget_percent=BUDGET, modulus_cap=MODULUS_CAP, strategy=strategy
            )
            start = time.perf_counter()
            result = WatermarkGenerator(config, rng=7).generate(histogram)
            elapsed = time.perf_counter() - start
            row[strategy] = result.pair_count
            if strategy == "optimal":
                row["eligible_pairs"] = len(result.eligible_pairs)
                row["gen_seconds"] = elapsed
                start = time.perf_counter()
                detection = detect_watermark(result.watermarked_histogram, result.secret)
                detect_seconds = time.perf_counter() - start
                row["detected"] = detection.accepted
        row["detect_seconds"] = detect_seconds
        rows.append(row)
    return rows


def test_table2_real_dataset_validation(benchmark, scale):
    """Regenerate Table II on the synthetic stand-ins."""
    rows = benchmark.pedantic(_validate_datasets, args=(scale,), rounds=1, iterations=1)
    experiment_banner(
        "Table II",
        f"real-dataset validation (z={MODULUS_CAP}, b={BUDGET}, scale={scale.name})",
    )
    print(  # noqa: T201
        format_table(
            rows,
            columns=[
                "dataset",
                "size",
                "distinct_tokens",
                "eligible_pairs",
                "optimal",
                "greedy",
                "random",
                "gen_seconds",
                "detect_seconds",
                "detected",
            ],
        )
    )

    by_name = {row["dataset"]: row for row in rows}
    taxi = by_name["chicago-taxi (Taxi ID)"]
    adult = by_name["adult (Age)"]

    # Every watermark verifies on its own watermarked data.
    assert all(row["detected"] for row in rows)
    # More eligible pairs -> more chosen pairs (Taxi >= eyeWnder >= Adult).
    assert taxi["eligible_pairs"] >= adult["eligible_pairs"]
    assert taxi["optimal"] >= adult["optimal"]
    # The optimal strategy never loses to the heuristics.
    for row in rows:
        assert row["optimal"] >= row["greedy"]
        assert row["optimal"] >= row["random"]
    # Detection is far faster than generation, and Adult is near-instant.
    for row in rows:
        assert row["detect_seconds"] < row["gen_seconds"]
    assert adult["gen_seconds"] < taxi["gen_seconds"]
