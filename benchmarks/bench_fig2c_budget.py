"""Figure 2c — heuristic performance relative to optimal versus budget b.

Paper setting: α = 0.7 synthetic workload, z = 1031, budget swept. Expected
shape: with a larger budget the heuristics approach the optimal selection
(eventually everything eligible fits), while at tight budgets the optimal
algorithm keeps a visible advantage.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.datasets.synthetic import generate_power_law_histogram

from bench_utils import experiment_banner

MODULUS_CAP = 1031
# The reduced-scale histograms are so large relative to the per-pair change
# that the paper's budgets (fractions of a percent up to a few percent) only
# start to bind at the very small end, so the sweep starts much lower; the
# right-hand end reproduces the paper's regime where even the heuristics can
# afford almost every eligible pair.
BUDGET_SWEEP = (0.0005, 0.002, 0.01, 0.1, 2.0)
STRATEGIES = ("optimal", "greedy", "random")


def _chosen_pairs_by_budget(scale) -> list:
    histogram = generate_power_law_histogram(
        0.7,
        n_tokens=scale.synthetic_tokens,
        sample_size=scale.synthetic_samples,
        mode="sampled",
        rng=1_070,
    )
    rows = []
    for budget in BUDGET_SWEEP:
        row = {"budget_percent": budget}
        for strategy in STRATEGIES:
            config = GenerationConfig(
                budget_percent=budget, modulus_cap=MODULUS_CAP, strategy=strategy
            )
            result = WatermarkGenerator(config, rng=13).generate(histogram)
            row[strategy] = result.pair_count
        for strategy in ("greedy", "random"):
            row[f"{strategy}_vs_optimal"] = (
                row[strategy] / row["optimal"] if row["optimal"] else 1.0
            )
        rows.append(row)
    return rows


def test_fig2c_heuristics_vs_optimal_by_budget(benchmark, scale):
    """Regenerate the Figure 2c series and check its qualitative shape."""
    rows = benchmark.pedantic(_chosen_pairs_by_budget, args=(scale,), rounds=1, iterations=1)
    experiment_banner(
        "Figure 2c",
        f"greedy/random relative to optimal vs budget (α=0.7, z={MODULUS_CAP}, scale={scale.name})",
    )
    print(  # noqa: T201
        format_table(
            rows,
            columns=[
                "budget_percent",
                "optimal",
                "greedy",
                "random",
                "greedy_vs_optimal",
                "random_vs_optimal",
            ],
        )
    )

    # The optimal count never decreases as the budget grows.
    optima = [row["optimal"] for row in rows]
    assert optima == sorted(optima)
    # Optimal dominates at every budget.
    for row in rows:
        assert row["optimal"] >= row["greedy"]
        assert row["optimal"] >= row["random"]
    # With the largest budget the heuristics sit close to the optimal (the
    # paper observes roughly a 20% gap shrinking as the budget grows).
    assert rows[-1]["greedy_vs_optimal"] >= 0.7
    assert rows[-1]["random_vs_optimal"] >= 0.6
