"""Zero-copy data plane — bytes-on-wire dedup and shm dispatch guards.

Not a paper figure: this benchmark guards the execution-layer data plane
(content-addressed blobs, shared-memory local transport, deduplicated v4
remote payloads) against functional and performance regression.

* **Remote dedup**: a 200-task shared-secret screen — every task carries
  the same suspect histogram — dispatched to a spawned ``freqywm
  worker`` must move **>=5x fewer bytes** over the socket with the blob
  plane on than with inline pickled payloads, while returning verdicts
  identical to the inline run. The shared histogram ships once as a
  content-addressed blob; each task line then carries only its digest.
* **Local shm dispatch**: fanning a large shared NumPy array out to a
  :class:`~repro.exec.scheduler.LocalScheduler` pool must be faster
  through the shared-memory transport (one exported segment, zero-copy
  worker attach) than through per-task pickling of the full array.

Run directly (``python benchmarks/bench_exec_dataplane.py``) or via
pytest; the CI smoke job includes the timings in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import DetectionConfig
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenPair
from repro.exec.blobs import DATAPLANE_ENV, maybe_blob
from repro.exec.policy import ExecutionPolicy
from repro.exec.remote import RemoteScheduler
from repro.exec.scheduler import (
    TaskSpec,
    create_scheduler,
    register_task_function,
)

from bench_utils import experiment_banner

TASK_COUNT = 200
DEDUP_FLOOR = 5.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


@contextlib.contextmanager
def _dataplane(mode: str):
    """Force the data plane on (``blob``) or off (``inline``) for a block."""
    previous = os.environ.get(DATAPLANE_ENV)
    if mode == "blob":
        os.environ.pop(DATAPLANE_ENV, None)
    else:
        os.environ[DATAPLANE_ENV] = "inline"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(DATAPLANE_ENV, None)
        else:
            os.environ[DATAPLANE_ENV] = previous


@contextlib.contextmanager
def _spawn_worker(socket_path: Path):
    """A live ``freqywm worker`` on ``socket_path`` for the block."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--socket", str(socket_path)],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = process.stderr.readline()
        if "listening on" not in line:
            process.terminate()
            raise RuntimeError(f"worker failed to start: {line!r}")
        yield process
    finally:
        process.terminate()
        process.wait(timeout=10)


def _screen_workload(tokens: int):
    """One big suspect histogram plus a fleet of candidate secrets."""
    histogram = TokenHistogram.from_counts(
        {f"tok{i:05d}": 10_000 - i for i in range(tokens)}
    )
    pairs = tuple(
        TokenPair(f"tok{i:05d}", f"tok{i + 1:05d}") for i in range(0, 16, 2)
    )
    secret = WatermarkSecret(pairs=pairs, secret=0x5EC4E7, modulus_cap=131)
    return histogram, secret


def _screen_specs(histogram, secret, detection, *, blobs: bool):
    """The 200 shared-histogram ``secrets.chunk`` tasks, one secret each."""
    value, refs = (histogram, ())
    if blobs:
        value, refs = maybe_blob(histogram)
    return [
        TaskSpec(
            fingerprint=f"dataplane:{detection.fingerprint()}:{index}",
            function="secrets.chunk",
            payload=(value, [secret], detection, False, "numpy"),
            blob_refs=refs,
        )
        for index in range(TASK_COUNT)
    ]


def test_remote_payload_dedup():
    """200-task shared-secret screen: >=5x fewer bytes on the wire."""
    tokens = 1_500 if _smoke() else 4_000
    histogram, secret = _screen_workload(tokens)
    detection = DetectionConfig()

    outcomes = {}
    with tempfile.TemporaryDirectory(prefix="bench-dataplane-") as tmp:
        for mode in ("inline", "blob"):
            socket_path = Path(tmp) / f"worker-{mode}.sock"
            with _dataplane(mode), _spawn_worker(socket_path):
                scheduler = RemoteScheduler([f"unix:{socket_path}"])
                try:
                    specs = _screen_specs(
                        histogram, secret, detection, blobs=(mode == "blob")
                    )
                    start = time.perf_counter()
                    results = scheduler.run(specs)
                    seconds = time.perf_counter() - start
                    outcomes[mode] = (results, scheduler.stats, seconds)
                finally:
                    scheduler.close()

    inline_results, inline_stats, inline_seconds = outcomes["inline"]
    blob_results, blob_stats, blob_seconds = outcomes["blob"]
    assert blob_results == inline_results, "data plane changed the verdicts"
    assert blob_stats.blobs_sent >= 1
    assert blob_stats.bytes_deduped > 0

    ratio = inline_stats.bytes_sent / max(blob_stats.bytes_sent, 1)
    experiment_banner(
        "Data plane: remote dedup",
        f"{TASK_COUNT} tasks sharing one {tokens}-token histogram",
    )
    print(  # noqa: T201
        f"  inline: {inline_stats.bytes_sent:,} bytes ({inline_seconds:.2f} s)   "
        f"blob: {blob_stats.bytes_sent:,} bytes ({blob_seconds:.2f} s)   "
        f"reduction: {ratio:.1f}x "
        f"(deduped {blob_stats.bytes_deduped:,} bytes)"
    )
    assert ratio >= DEDUP_FLOOR, (
        f"blob plane moved only {ratio:.1f}x fewer bytes than inline "
        f"(floor {DEDUP_FLOOR}x)"
    )


def _array_sum(_state, payload) -> int:
    """Trivial task: touch the shared array so transport cost dominates."""
    array, index = payload
    return int(array[index]) + int(array[-1])


register_task_function("dataplane.sum", _array_sum)


def _shm_specs(array, count: int, *, blobs: bool):
    value, refs = (array, ())
    if blobs:
        value, refs = maybe_blob(array)
    return [
        TaskSpec(
            fingerprint=f"shm:{len(array)}:{index}",
            function="dataplane.sum",
            payload=(value, index),
            blob_refs=refs,
        )
        for index in range(count)
    ]


def test_local_shm_dispatch():
    """Shared-array fan-out: shm transport beats per-task pickling."""
    import pytest

    length = 1_000_000 if _smoke() else 2_000_000
    count = 24 if _smoke() else 32
    array = np.arange(length, dtype=np.int64)
    expected = [int(array[i]) + int(array[-1]) for i in range(count)]

    failures = []
    timings = {}
    for mode in ("inline", "blob"):
        with _dataplane(mode):
            scheduler = create_scheduler(
                ExecutionPolicy(workers=2),
                on_spawn_failure=lambda error: failures.append(error),
            )
            try:
                if scheduler.workers < 2 or failures:
                    pytest.skip("cannot spawn a local worker pool here")
                # Warm the pool outside the timed window.
                scheduler.run(_shm_specs(array[:8], 1, blobs=False))
                specs = _shm_specs(array, count, blobs=(mode == "blob"))
                start = time.perf_counter()
                results = scheduler.run(specs)
                timings[mode] = time.perf_counter() - start
                assert results == expected, f"{mode} dispatch corrupted results"
            finally:
                scheduler.close()

    speedup = timings["inline"] / max(timings["blob"], 1e-9)
    experiment_banner(
        "Data plane: local shm dispatch",
        f"{count} tasks sharing one {array.nbytes / 1e6:.0f} MB array",
    )
    print(  # noqa: T201
        f"  inline: {timings['inline']:.2f} s   blob/shm: {timings['blob']:.2f} s   "
        f"speedup: {speedup:.2f}x"
    )
    floor = 1.05 if _smoke() else 1.2
    assert speedup >= floor, (
        f"shm dispatch only {speedup:.2f}x faster than inline (floor {floor}x)"
    )


if __name__ == "__main__":
    raise SystemExit(
        subprocess.call([sys.executable, "-m", "pytest", "-q", "-x", __file__])
    )
