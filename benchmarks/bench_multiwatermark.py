"""Section VI and Figures 6-9 — multi-watermarks on the click-stream data.

Paper setting: ten successive watermarks (each with b = 2) applied to the
eyeWnder click-stream. Reported effects: the final histogram differs from
the original by only ~0.003 % similarity; the trend / seasonality /
residual decomposition of the daily-visit series and the browser-history
histogram barely move (Figures 6-9); and a next-URL sequence model trained
on the watermarked data matches the accuracy of one trained on the original
(82.33 % vs 82.34 % in the paper, with an LSTM; here with the Markov
substitute documented in DESIGN.md). Expected shape: cumulative distortion
stays tiny, every per-stage watermark remains detectable in the final
version, all decomposition components change by well under a percent, and
the model-accuracy difference is negligible.
"""

from __future__ import annotations

from repro.analysis.decomposition import component_difference, decompose
from repro.analysis.reporting import format_table
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.histogram import TokenHistogram
from repro.core.multiwatermark import MultiWatermarker
from repro.core.transform import transform_dataset
from repro.datasets.clickstream import (
    ClickstreamSpec,
    clickstream_tokens,
    daily_visit_series,
    generate_clickstream,
    url_sequences_by_user,
)
from repro.datasets.tabular import TabularDataset
from repro.ml.sequence_model import accuracy_impact

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131


def _multiwatermark_study(scale) -> dict:
    clickstream = generate_clickstream(
        ClickstreamSpec(
            n_urls=min(scale.clickstream_urls, 600),
            n_users=60,
            n_events=min(scale.clickstream_events, 40_000),
            days=28,
        ),
        rng=4_004,
    )
    tokens = clickstream_tokens(clickstream)
    original_histogram = TokenHistogram.from_tokens(tokens)

    config = GenerationConfig(
        budget_percent=BUDGET, modulus_cap=MODULUS_CAP, max_candidates=300
    )
    multi = MultiWatermarker(config, rng=606).watermark(
        original_histogram, rounds=scale.multiwatermark_rounds
    )

    # Materialise the final watermarked dataset at the row level so the
    # time-series and sequence-model analyses run on actual data.
    watermarked_tokens = transform_dataset(
        tokens, original_histogram, multi.final_histogram, rng=607
    )
    watermarked_rows = []
    for row, token in zip(clickstream, watermarked_tokens[: len(clickstream)]):
        new_row = dict(row)
        new_row["url"] = token
        watermarked_rows.append(new_row)
    watermarked_clickstream = TabularDataset(columns=clickstream.columns, rows=watermarked_rows)

    # Figures 6-8: trend / seasonality / residual of the daily visit series.
    _days, original_series = daily_visit_series(clickstream)
    _days, watermarked_series = daily_visit_series(watermarked_clickstream)
    n = min(len(original_series), len(watermarked_series))
    decomposition_delta = component_difference(
        decompose(original_series[:n], period=7), decompose(watermarked_series[:n], period=7)
    )

    # Figure 9 + accuracy: browser-history histogram and next-URL model.
    per_round = [
        {
            "round": stage.index,
            "pairs": stage.result.pair_count,
            "cumulative_similarity_percent": stage.cumulative_similarity_percent,
        }
        for stage in multi.rounds
    ]
    detection_rows = []
    for index in range(len(multi.rounds)):
        detection = multi.detect_round(
            index, multi.final_histogram, config=DetectionConfig(pair_threshold=2)
        )
        detection_rows.append(
            {
                "round": index,
                "detected_in_final": detection.accepted,
                "accepted_fraction": detection.accepted_fraction,
            }
        )

    model_report = accuracy_impact(
        url_sequences_by_user(clickstream),
        url_sequences_by_user(watermarked_clickstream),
        order=2,
        top_k=3,
        rng=608,
    )

    return {
        "per_round": per_round,
        "detection_rows": detection_rows,
        "final_similarity_percent": multi.final_similarity_percent,
        "decomposition_delta": decomposition_delta,
        "model_report": model_report,
    }


def test_multiwatermark_effects(benchmark, scale):
    """Regenerate the Section VI multi-watermark study (Figures 6-9)."""
    report = benchmark.pedantic(_multiwatermark_study, args=(scale,), rounds=1, iterations=1)
    experiment_banner(
        "Section VI / Figures 6-9",
        f"{scale.multiwatermark_rounds} successive watermarks on the click-stream stand-in",
    )
    print(format_table(report["per_round"], title="Per-round watermark sizes and similarity"))  # noqa: T201
    print()  # noqa: T201
    print(format_table(report["detection_rows"], title="Detectability of every round in the final version"))  # noqa: T201
    print(  # noqa: T201
        f"\nFinal similarity to the original histogram: "
        f"{report['final_similarity_percent']:.5f}%"
    )
    print(  # noqa: T201
        "Relative RMS change of decomposition components: "
        + ", ".join(f"{k}={v:.5f}" for k, v in report["decomposition_delta"].items())
    )
    model = report["model_report"]
    print(  # noqa: T201
        f"Next-URL model accuracy: original={model['original_accuracy']:.4f} "
        f"watermarked={model['watermarked_accuracy']:.4f} "
        f"difference={model['accuracy_difference']:+.4f}"
    )

    # Cumulative distortion after all rounds stays tiny (paper: ~0.003%).
    assert report["final_similarity_percent"] > 99.5
    # Every per-stage watermark is still detectable in the final version.
    assert all(row["detected_in_final"] for row in report["detection_rows"])
    # The analytical features of the data barely move.
    assert report["decomposition_delta"]["series"] < 0.05
    assert report["decomposition_delta"]["trend"] < 0.05
    # The sequence-model accuracy is essentially unchanged.
    assert abs(model["accuracy_difference"]) < 0.05
