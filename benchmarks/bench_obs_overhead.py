"""Telemetry overhead guard — disabled instrumentation must be free.

Not a paper figure: this benchmark guards the ``repro.obs`` telemetry
plane's core promise ("off means off", ``docs/observability.md``)
against regression. Every hot execution path gained a telemetry guard
in front of it — :func:`repro.exec.scheduler.run_task`, the blob store,
the service verbs — and those guards must stay a single feature check,
not creep into id generation or attribute-dict allocation.

* **Disabled span cost**: a disabled ``span()`` block must cost well
  under :data:`NOOP_CEILING_SECONDS` per entry — it hands back one
  shared inert object and touches no clock.
* **Dispatch overhead**: running a batch of real (NumPy-dot) tasks
  through the instrumented :func:`~repro.exec.scheduler.run_task` with
  telemetry disabled must stay within :data:`OVERHEAD_CEILING` of the
  raw task body (min-of-rounds timings, so scheduler noise cancels).

Run directly (``python benchmarks/bench_obs_overhead.py``) or via
pytest; the CI smoke job includes the timings in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.exec.scheduler import (
    TaskSpec,
    _execute_task,
    register_task_function,
    run_task,
)
from repro.obs.trace import configure_telemetry, span

from bench_utils import experiment_banner

#: Per-entry wall-clock ceiling for a disabled ``span()`` block.
NOOP_CEILING_SECONDS = 5e-6

#: Instrumented-vs-raw dispatch ratio ceiling with telemetry disabled.
OVERHEAD_CEILING = 1.03

#: Timed rounds per variant; the minimum is compared (noise-resistant).
ROUNDS = 7

#: Tasks per timed round.
TASK_COUNT = 32


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _dot_task(_state: object, payload) -> float:
    """A real CPU-bound task body: one dense dot product."""
    return float(np.dot(payload, payload))


register_task_function("obs.dot", _dot_task)


def _specs(array: np.ndarray) -> list:
    return [
        TaskSpec(
            fingerprint=f"obs-overhead:{index}",
            function="obs.dot",
            payload=array,
        )
        for index in range(TASK_COUNT)
    ]


def test_disabled_span_is_noop():
    """A disabled ``span()`` entry costs (much) less than the ceiling."""
    configure_telemetry(None)
    calls = 50_000 if _smoke() else 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with span("bench.noop"):
            pass
    per_call = (time.perf_counter() - start) / calls
    experiment_banner(
        "Telemetry overhead: disabled span",
        f"{calls:,} disabled span() entries",
    )
    print(f"  {per_call * 1e9:,.0f} ns/entry (ceiling {NOOP_CEILING_SECONDS * 1e9:,.0f} ns)")  # noqa: T201
    assert per_call < NOOP_CEILING_SECONDS, (
        f"disabled span() costs {per_call * 1e6:.2f} us/entry "
        f"(ceiling {NOOP_CEILING_SECONDS * 1e6:.2f} us)"
    )


def _paired_minimums(functions, specs) -> list:
    """Min-of-rounds wall clock per function, rounds interleaved.

    Alternating the measurement order each round cancels slow drift
    (thermal throttling, page-cache warmup) that sequential min-of-N
    blocks would attribute to whichever variant ran second.
    """
    best = [float("inf")] * len(functions)
    for round_index in range(ROUNDS):
        order = range(len(functions))
        if round_index % 2:
            order = reversed(order)
        for position in order:
            start = time.perf_counter()
            for spec in specs:
                functions[position](spec)
            best[position] = min(best[position], time.perf_counter() - start)
    return best


def test_disabled_dispatch_overhead():
    """Instrumented run_task (telemetry off) within 3% of the raw body."""
    configure_telemetry(None)
    length = 200_000 if _smoke() else 500_000
    array = np.arange(length, dtype=np.float64)
    specs = _specs(array)
    # Warm both paths (imports, numpy dispatch) outside the timing.
    _execute_task(specs[0])
    run_task(specs[0])
    raw, instrumented = _paired_minimums([_execute_task, run_task], specs)
    ratio = instrumented / raw
    experiment_banner(
        "Telemetry overhead: disabled dispatch",
        f"{TASK_COUNT} numpy-dot tasks x {ROUNDS} rounds, min-of-rounds",
    )
    print(  # noqa: T201
        f"  raw: {raw * 1000:.2f} ms   instrumented: {instrumented * 1000:.2f} ms   "
        f"ratio: {ratio:.4f} (ceiling {OVERHEAD_CEILING})"
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"disabled-telemetry dispatch is {ratio:.3f}x the raw body "
        f"(ceiling {OVERHEAD_CEILING}x)"
    )


if __name__ == "__main__":
    test_disabled_span_is_noop()
    test_disabled_dispatch_overhead()
    print("\nbench_obs_overhead: all guards passed")  # noqa: T201
