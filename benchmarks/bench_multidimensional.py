"""Section IV-C — watermarking a multi-dimensional token ([Age, WorkClass]).

Paper setting: UCI Adult with the composite token [Age, WorkClass]
(481 distinct values in the real data), z = 131, b = 2; the paper selects
20 pairs. Expected shape: the composite token space is much larger than
Age alone, the watermark embeds a comparable number of pairs, the row-level
edits reproduce the watermarked histogram exactly, and detection verifies.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.detector import detect_watermark
from repro.core.histogram import TokenHistogram
from repro.core.multidimensional import TabularWatermarker
from repro.datasets.adult import AdultSpec, generate_adult_dataset

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131


def _watermark_composite_token(scale) -> dict:
    dataset = generate_adult_dataset(AdultSpec(n_rows=scale.adult_rows), rng=44)
    report = {}
    for label, columns in (("Age", ["age"]), ("Age+WorkClass", ["age", "workclass"])):
        watermarker = TabularWatermarker(
            columns,
            GenerationConfig(budget_percent=BUDGET, modulus_cap=MODULUS_CAP),
            rng=9,
        )
        result = watermarker.watermark(dataset)
        tokens_after = watermarker.tokenize(result.watermarked_dataset)
        detection = detect_watermark(
            TokenHistogram.from_tokens(tokens_after), result.core.secret
        )
        report[label] = {
            "token": label,
            "distinct_tokens": len(result.core.original_histogram),
            "eligible_pairs": len(result.core.eligible_pairs),
            "chosen_pairs": result.pair_count,
            "similarity_percent": result.similarity_percent,
            "rows_after": len(result.watermarked_dataset),
            "detected": detection.accepted,
            "histogram_consistent": TokenHistogram.from_tokens(tokens_after).as_dict()
            == result.core.watermarked_histogram.as_dict(),
        }
    return report


def test_multidimensional_token_watermarking(benchmark, scale):
    """Regenerate the Section IV-C multi-dimensional experiment."""
    report = benchmark.pedantic(
        _watermark_composite_token, args=(scale,), rounds=1, iterations=1
    )
    experiment_banner(
        "Section IV-C",
        f"composite token [Age, WorkClass] on the Adult stand-in (scale={scale.name})",
    )
    print(format_table(list(report.values())))  # noqa: T201

    single = report["Age"]
    composite = report["Age+WorkClass"]
    # The composite token space is strictly richer than Age alone.
    assert composite["distinct_tokens"] > single["distinct_tokens"]
    # Both watermarks embed pairs, verify, and keep the row edits consistent.
    for row in report.values():
        assert row["chosen_pairs"] > 0
        assert row["detected"]
        assert row["histogram_consistent"]
        assert row["similarity_percent"] >= 100.0 - BUDGET
