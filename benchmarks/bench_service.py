"""Detection service throughput — cached + coalesced vs one-shot.

Not a paper figure: this benchmark guards the service layer (PR 3)
against functional and performance regression.

The workload is the ISSUE 3 acceptance scenario: **200 single-dataset
requests against one (cached) secret**. The baseline answers them the
way a stateless deployment would — one
:func:`~repro.core.detector.detect_watermark` call per request, paying
detector construction (SHA-256 moduli for every stored pair) and one
single-dataset vectorized pass each time. The service answers the same
200 requests through :class:`~repro.service.SyncDetectionService`:
detector built once (LRU cache), requests coalesced into shared
``detect_many`` passes.

Asserted, in both smoke and full scale:

* verdict parity — the service answers are identical to the one-shot
  answers, request by request;
* coalescing — the 200 requests ride in far fewer vectorized passes;
* **throughput ≥ 3x** over sequential one-shot detection.

Run directly (``python benchmarks/bench_service.py [--smoke]``) or via
pytest; the CI smoke job includes the timing in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import time

from repro.core.detector import detect_watermark
from repro.core.eligibility import generate_eligible_pairs
from repro.core.histogram import TokenHistogram
from repro.core.knapsack import select_within_budget
from repro.core.matching import vertex_disjoint
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_tokens
from repro.service import ServiceConfig, SyncDetectionService
from repro.utils.rng import ensure_rng

from bench_utils import experiment_banner

SECRET = 0x5EED5EED
MODULUS_CAP = 13
BUDGET = 2.0
REQUESTS = 200
MIN_SPEEDUP = 3.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _time(function, *args, **kwargs):
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return time.perf_counter() - start, value


def _workload(request_count: int, suspect_size: int):
    """One secret with a healthy pair count plus pre-built suspect histograms."""
    base = generate_power_law_tokens(
        0.6, n_tokens=800, sample_size=300_000, rng=20_263
    )
    histogram = TokenHistogram.from_tokens(base)
    candidates = vertex_disjoint(
        generate_eligible_pairs(histogram, SECRET, MODULUS_CAP, max_candidates=600)
    )
    selection = select_within_budget(histogram, candidates, BUDGET)
    assert selection.selected, "workload produced no watermarkable pairs"
    secret = WatermarkSecret.build(
        [item.pair for item in selection.selected], SECRET, MODULUS_CAP
    )
    vocabulary = list(histogram.tokens)
    rng = ensure_rng(424_242)
    suspects = []
    for _ in range(request_count):
        indices = rng.integers(0, len(vocabulary), size=suspect_size)
        suspects.append(
            TokenHistogram.from_tokens([vocabulary[int(i)] for i in indices])
        )
    return secret, suspects


def test_service_throughput_200_cached_secret_requests():
    """ISSUE 3 acceptance: coalesced throughput >= 3x sequential one-shot."""
    suspect_size = 1_500 if _smoke() else 10_000
    secret, suspects = _workload(REQUESTS, suspect_size)

    # Warm the histogram array caches so both paths measure detection,
    # not lazy array construction (both would pay it on first touch).
    for suspect in suspects:
        suspect.arrays()

    def sequential_one_shot():
        return [detect_watermark(suspect, secret) for suspect in suspects]

    sequential_seconds, baseline = _time(sequential_one_shot)

    service_config = ServiceConfig(max_batch=64, max_delay=0.005)
    with SyncDetectionService(service_config) as service:
        service.register_secret(secret)  # warm: the cache holds the detector
        service_seconds, coalesced = _time(
            service.detect_all, suspects, secret
        )
        stats = service.stats
        cache_stats = service.cache_stats()

    # Verdict parity, request by request (bit-identical counters).
    assert [
        (r.accepted, r.accepted_pairs, r.required_pairs, r.total_pairs)
        for r in coalesced
    ] == [
        (r.accepted, r.accepted_pairs, r.required_pairs, r.total_pairs)
        for r in baseline
    ]
    # The 200 requests actually coalesced and hit the cached detector.
    assert stats.requests == REQUESTS
    assert stats.batches <= REQUESTS // 4
    assert cache_stats.misses == 1

    speedup = sequential_seconds / max(service_seconds, 1e-9)
    experiment_banner(
        "Detection service throughput",
        f"{REQUESTS} requests x {suspect_size}-token suspects, "
        f"{len(secret.pairs)} stored pairs, one cached secret",
    )
    print(  # noqa: T201
        f"  sequential one-shot: {sequential_seconds * 1000:.1f} ms   "
        f"service (cached+coalesced): {service_seconds * 1000:.1f} ms   "
        f"speedup: {speedup:.1f}x"
    )
    print(  # noqa: T201
        f"  batches: {stats.batches} (mean size {stats.mean_batch_size:.1f}, "
        f"largest {stats.largest_batch}), cache hit rate "
        f"{cache_stats.hit_rate:.2%}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"service throughput regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"({sequential_seconds:.3f}s one-shot vs {service_seconds:.3f}s service)"
    )


def main(argv=None) -> int:
    """CLI entry point: ``python benchmarks/bench_service.py [--smoke]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced smoke workload (sets REPRO_BENCH_SCALE=smoke)",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    test_service_throughput_200_cached_secret_requests()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
