"""Section V-A — guess (brute-force) attack.

Paper claim: the probability that a probabilistic polynomial-time attacker
guesses a secret list that the detection algorithm accepts is negligible in
the security parameter, so impersonating the owner by brute force is
impractical, while verification by the legitimate owner runs in linear
time. Expected shape: the analytical success probability of a random guess
collapses super-exponentially as the required pair count k grows, the
Monte-Carlo attacker never succeeds at realistic thresholds, and detection
latency grows linearly in the number of stored pairs.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.attacks.guess import GuessAttack, expected_guesses_to_succeed, guess_success_probability
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenPair

from bench_utils import experiment_banner

MODULUS_CAP = 131


def _guess_attack_study(reference_watermark, attempts) -> dict:
    histogram = reference_watermark.watermarked_histogram
    n_pairs = len(reference_watermark.secret.pairs)

    analytical_rows = []
    for required in (1, 2, 5, 10, max(2, n_pairs // 2)):
        probability = guess_success_probability(
            n_pairs, required, modulus=MODULUS_CAP, threshold=0
        )
        analytical_rows.append(
            {
                "guessed_pairs": n_pairs,
                "required_pairs_k": required,
                "success_probability": probability,
                "expected_guesses": expected_guesses_to_succeed(
                    n_pairs, required, modulus=MODULUS_CAP, threshold=0
                ),
            }
        )

    attack = GuessAttack(guessed_pairs=min(20, n_pairs), modulus_cap=MODULUS_CAP, rng=123)
    monte_carlo = attack.run(
        histogram,
        attempts=attempts,
        detection=DetectionConfig(pair_threshold=0, min_accepted_fraction=0.5),
    )

    # Detection latency versus number of stored pairs (linear-time claim).
    tokens = histogram.tokens
    timing_rows = []
    for stored_pairs in (10, 50, 100):
        stored_pairs = min(stored_pairs, len(tokens) // 2)
        pairs = [
            TokenPair.ordered(
                tokens[2 * i],
                tokens[2 * i + 1],
                histogram.frequency(tokens[2 * i]),
                histogram.frequency(tokens[2 * i + 1]),
            )
            for i in range(stored_pairs)
        ]
        secret = WatermarkSecret.build(pairs, secret=99, modulus_cap=MODULUS_CAP)
        detector = WatermarkDetector(secret, DetectionConfig(pair_threshold=0))
        start = time.perf_counter()
        for _ in range(20):
            detector.detect(histogram)
        elapsed = (time.perf_counter() - start) / 20
        timing_rows.append({"stored_pairs": stored_pairs, "detect_seconds": elapsed})

    return {
        "analytical": analytical_rows,
        "monte_carlo_attempts": monte_carlo.attempts,
        "monte_carlo_successes": monte_carlo.successes,
        "timing": timing_rows,
    }


def test_guess_attack_probabilities(benchmark, scale, reference_watermark):
    """Regenerate the Section V-A guess-attack analysis."""
    report = benchmark.pedantic(
        _guess_attack_study,
        args=(reference_watermark, 100 * scale.attack_repetitions),
        rounds=1,
        iterations=1,
    )
    experiment_banner(
        "Section V-A",
        f"guess attack success probability and detection latency (scale={scale.name})",
    )
    print(format_table(report["analytical"], float_digits=8, title="Analytical single-guess success"))  # noqa: T201
    print(  # noqa: T201
        f"\nMonte-Carlo attacker: {report['monte_carlo_successes']} successes in "
        f"{report['monte_carlo_attempts']} attempts"
    )
    print()  # noqa: T201
    print(format_table(report["timing"], float_digits=6, title="Detection latency vs stored pairs"))  # noqa: T201

    probabilities = [row["success_probability"] for row in report["analytical"]]
    # Success probability collapses as the required pair count grows.
    assert probabilities == sorted(probabilities, reverse=True)
    assert probabilities[-1] < 1e-6
    # The Monte-Carlo attacker never succeeds at realistic thresholds.
    assert report["monte_carlo_successes"] == 0
    # Detection stays fast (well under a second) even with 100 stored pairs.
    assert all(row["detect_seconds"] < 0.5 for row in report["timing"])
