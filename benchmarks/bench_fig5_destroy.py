"""Figure 5 — destroy attacks without re-ordering.

Paper setting: the α = 0.5 reference watermark plus, as a false-positive
control, a non-watermarked dataset over the same token space with α = 0.7.
Four curves of verified-pair percentage versus the per-pair threshold t:

* ``D_w``   — the untouched watermarked dataset (100 % everywhere),
* ``D^1_w`` — frequencies changed by at most 1 % of their slack (weak
  attack; ~90 % verified already at t = 0),
* ``D^r_w`` — frequencies changed randomly within the ranking boundaries
  (strong attack; ~35 % at t = 0 rising to ~90 % at t = 10),
* ``D_non`` — the non-watermarked control, whose verified fraction grows
  with t (this is the false-positive region).

Expected shape: the same ordering of the four curves and the same growth
with t; usable (t, k) settings live between the strong-attack curve and
the control curve.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.attacks.destroy import BoundaryNoiseAttack, PercentageNoiseAttack, sweep_thresholds
from repro.datasets.synthetic import generate_power_law_histogram

from bench_utils import experiment_banner

THRESHOLDS = (0, 1, 2, 4, 10)


def _destroy_sweeps(scale, reference_watermark) -> dict:
    watermarked = reference_watermark.watermarked_histogram
    secret = reference_watermark.secret
    repetitions = scale.attack_repetitions

    non_watermarked = generate_power_law_histogram(
        0.7,
        n_tokens=scale.synthetic_tokens,
        sample_size=scale.synthetic_samples,
        mode="sampled",
        rng=707,
    )

    sweeps = {
        "Dw (no attack)": sweep_thresholds(watermarked, secret, THRESHOLDS),
        "D1w (<=1% of slack)": sweep_thresholds(
            watermarked,
            secret,
            THRESHOLDS,
            attack=PercentageNoiseAttack(1.0, rng=31),
            repetitions=repetitions,
        ),
        "Drw (random within bounds)": sweep_thresholds(
            watermarked,
            secret,
            THRESHOLDS,
            attack=BoundaryNoiseAttack(rng=32),
            repetitions=repetitions,
        ),
        "Dnon (not watermarked, α=0.7)": sweep_thresholds(
            non_watermarked, secret, THRESHOLDS
        ),
    }
    return sweeps


def test_fig5_destroy_without_reordering(benchmark, scale, reference_watermark):
    """Regenerate the Figure 5 curves."""
    sweeps = benchmark.pedantic(
        _destroy_sweeps, args=(scale, reference_watermark), rounds=1, iterations=1
    )
    experiment_banner(
        "Figure 5",
        f"verified pairs vs threshold t under destroy attacks (scale={scale.name})",
    )
    rows = []
    for index, threshold in enumerate(THRESHOLDS):
        row = {"t": threshold}
        for label, points in sweeps.items():
            row[label] = points[index].accepted_fraction
        rows.append(row)
    print(format_table(rows))  # noqa: T201

    by_threshold = {row["t"]: row for row in rows}
    # The untouched watermarked dataset verifies every pair at every t.
    for row in rows:
        assert row["Dw (no attack)"] == 1.0
    # The weak attack dominates the strong attack at t = 0, and both grow
    # towards full verification as t increases.
    assert (
        by_threshold[0]["D1w (<=1% of slack)"]
        >= by_threshold[0]["Drw (random within bounds)"]
    )
    strong = [by_threshold[t]["Drw (random within bounds)"] for t in THRESHOLDS]
    assert strong == sorted(strong)
    assert strong[-1] > strong[0]
    # The non-watermarked control stays below the attacked watermarked data
    # at the strict threshold (the usable parameter region of the paper).
    assert (
        by_threshold[0]["Dnon (not watermarked, α=0.7)"]
        <= by_threshold[0]["D1w (<=1% of slack)"]
    )
