"""Section V-C2 — destroy attack *with* re-ordering.

Paper setting: the α = 0.5 reference watermark; the attacker perturbs every
frequency by up to {10, 30, 50, 60, 80, 90} % with no ranking restriction,
and detection runs at t = 4. The paper's success rates are approximately
[94, 88, 82, 79, 78, 76] %. Expected shape: the verified-pair rate decays
slowly and monotonically with the noise level and remains well above the
50 % detection threshold even at 90 % noise — by which point the attacker
has destroyed most of the data's own utility.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.attacks.destroy import ReorderingNoiseAttack, reordering_success_rates
from repro.core.similarity import rank_changes

from bench_utils import experiment_banner

NOISE_PERCENTS = (10, 30, 50, 60, 80, 90)
PAIR_THRESHOLD = 4


def _reordering_sweep(scale, reference_watermark) -> list:
    watermarked = reference_watermark.watermarked_histogram
    secret = reference_watermark.secret
    rates = reordering_success_rates(
        watermarked,
        secret,
        percents=NOISE_PERCENTS,
        pair_threshold=PAIR_THRESHOLD,
        repetitions=scale.attack_repetitions,
        rng=91,
    )
    rows = []
    for percent in NOISE_PERCENTS:
        attacked = ReorderingNoiseAttack(percent, rng=92).tamper(watermarked)
        rows.append(
            {
                "noise_percent": percent,
                "verified_pair_fraction": rates[float(percent)],
                "rank_changes_caused_by_attack": rank_changes(
                    watermarked.as_dict(), attacked.as_dict()
                ),
                "total_tokens": len(watermarked),
            }
        )
    return rows


def test_destroy_attack_with_reordering(benchmark, scale, reference_watermark):
    """Regenerate the Section V-C2 success-rate table."""
    rows = benchmark.pedantic(
        _reordering_sweep, args=(scale, reference_watermark), rounds=1, iterations=1
    )
    experiment_banner(
        "Section V-C2",
        f"destroy attack with re-ordering, t={PAIR_THRESHOLD} (scale={scale.name})",
    )
    print(format_table(rows))  # noqa: T201

    fractions = [row["verified_pair_fraction"] for row in rows]
    # Success decays (weakly) with the noise level...
    assert fractions[0] >= fractions[-1]
    # ...but the watermark survives even 90% noise with a solid margin
    # (the paper reports ~76%).
    assert fractions[-1] > 0.4
    # Meanwhile the attack itself wrecks the data: a large share of tokens
    # change rank at high noise levels.
    assert rows[-1]["rank_changes_caused_by_attack"] > rows[-1]["total_tokens"] // 2
