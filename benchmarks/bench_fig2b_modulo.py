"""Figure 2b — chosen pairs versus the modulus cap z.

Paper setting: α = 0.5 synthetic workload, b = 2, z swept over a range of
values. Expected shape: smaller z means smaller remainders to cancel, so
more pairs fit the budget; at very small z the three strategies converge,
while at larger z the optimal selection keeps a clear edge.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_SWEEP = (10, 131, 521, 1031, 2053)
STRATEGIES = ("optimal", "greedy", "random")


def _chosen_pairs_by_modulus(histogram) -> list:
    rows = []
    for modulus_cap in MODULUS_SWEEP:
        row = {"z": modulus_cap}
        for strategy in STRATEGIES:
            config = GenerationConfig(
                budget_percent=BUDGET, modulus_cap=modulus_cap, strategy=strategy
            )
            result = WatermarkGenerator(config, rng=11).generate(histogram)
            row[strategy] = result.pair_count
        row["eligible"] = len(result.eligible_pairs)
        rows.append(row)
    return rows


def test_fig2b_chosen_pairs_vs_modulus(benchmark, scale, synthetic_histogram):
    """Regenerate the Figure 2b series and check its qualitative shape."""
    rows = benchmark.pedantic(
        _chosen_pairs_by_modulus, args=(synthetic_histogram,), rounds=1, iterations=1
    )
    experiment_banner(
        "Figure 2b",
        f"chosen pairs vs modulus cap z (α=0.5, b={BUDGET}, scale={scale.name})",
    )
    print(  # noqa: T201
        format_table(rows, columns=["z", "optimal", "greedy", "random", "eligible"])
    )

    by_z = {row["z"]: row for row in rows}
    # Small moduli admit at least as many pairs as large moduli.
    assert by_z[10]["optimal"] >= by_z[2053]["optimal"]
    # Optimal never loses to the heuristics.
    for row in rows:
        assert row["optimal"] >= row["greedy"]
        assert row["optimal"] >= row["random"]
    # With a very small z the heuristics are close to optimal (within ~25%).
    if by_z[10]["optimal"] > 0:
        assert by_z[10]["greedy"] >= 0.7 * by_z[10]["optimal"]
