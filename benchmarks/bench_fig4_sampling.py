"""Section V-B and Figure 4 — sampling attack.

Paper setting: the α = 0.5 reference watermark (z = 131, b = 2); the
attacker keeps a random x% subsample and the owner rescales the suspect
back to the original size before detection, sweeping the per-pair
threshold t ∈ {0, 1, 2, 4, 10}. Expected shape: for samples larger than a
few times the number of distinct tokens the verified-pair rate is high and
grows with t (the paper: ~36 % at t = 0 up to ~99.5 % at t = 10, with >90 %
detection at a 20 % sample); for extremely small samples (Figure 4) the
rate collapses because watermarked tokens go missing entirely.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.attacks.sampling import evaluate_sampling_attack

from bench_utils import experiment_banner

COARSE_FRACTIONS = (0.01, 0.05, 0.2, 0.5, 0.9)
TINY_FRACTIONS = (0.0005, 0.001, 0.005, 0.02)
THRESHOLDS = (0, 1, 2, 4, 10)


def _sampling_sweep(reference_watermark, repetitions) -> dict:
    watermarked = reference_watermark.watermarked_histogram
    secret = reference_watermark.secret
    coarse = evaluate_sampling_attack(
        watermarked,
        secret,
        fractions=COARSE_FRACTIONS,
        thresholds=THRESHOLDS,
        repetitions=repetitions,
        rng=17,
    )
    tiny = evaluate_sampling_attack(
        watermarked,
        secret,
        fractions=TINY_FRACTIONS,
        thresholds=(0, 2, 10),
        repetitions=repetitions,
        rng=18,
    )
    return {"coarse": coarse, "tiny": tiny}


def _rows(points) -> list:
    return [
        {
            "sample_fraction": point.fraction,
            "t": point.pair_threshold,
            "verified_pair_fraction": point.accepted_fraction,
            "detected": point.detected,
        }
        for point in points
    ]


def test_fig4_sampling_attack(benchmark, scale, reference_watermark):
    """Regenerate the sampling-attack sweeps (Section V-B text + Figure 4)."""
    report = benchmark.pedantic(
        _sampling_sweep,
        args=(reference_watermark, scale.attack_repetitions),
        rounds=1,
        iterations=1,
    )
    experiment_banner(
        "Figure 4 / §V-B",
        f"sampling attack on the α=0.5 reference watermark (scale={scale.name})",
    )
    print(format_table(_rows(report["coarse"]), title="Coarse sample sizes (1% – 90%)"))  # noqa: T201
    print()  # noqa: T201
    print(format_table(_rows(report["tiny"]), title="Figure 4: extremely small samples"))  # noqa: T201

    coarse = {(p.fraction, p.pair_threshold): p for p in report["coarse"]}
    # For a fixed, non-tiny sample, larger t verifies at least as many pairs.
    for fraction in (0.2, 0.5, 0.9):
        series = [coarse[(fraction, t)].accepted_fraction for t in THRESHOLDS]
        assert all(series[i] <= series[i + 1] + 1e-9 for i in range(len(series) - 1))
    # A generous threshold keeps the watermark detectable at a 20% sample
    # (the paper reports >90% detection there).
    assert coarse[(0.2, 10)].accepted_fraction > 0.5
    assert coarse[(0.2, 10)].detected
    # Tiny samples verify no more pairs than moderate samples at the same t.
    tiny = {(p.fraction, p.pair_threshold): p for p in report["tiny"]}
    assert (
        tiny[(TINY_FRACTIONS[0], 10)].accepted_fraction
        <= coarse[(0.5, 10)].accepted_fraction + 1e-9
    )
