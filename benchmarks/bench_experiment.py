"""Experiment orchestration engine — cache-hit and parity guard.

Not a paper figure: this benchmark guards the experiment subsystem
(PR 5) against functional and performance regression. It drives the
bundled ``experiments/specs/smoke.json`` spec — the same one the CI
``experiment-smoke`` job runs through the CLI — end to end, twice:

* the **first run** executes the full DAG (dataset → embed → attack →
  detect → analyses) and renders the Markdown/JSON report;
* the **second run** must be served *entirely* from the
  content-addressed cache — zero task executions of any kind — and must
  re-render byte-identical reports;
* the cached rerun must also be dramatically cheaper than the first run
  (it only stats artifact files), which guards the cache path against
  accidental recomputation.

Run directly (``python benchmarks/bench_experiment.py [--smoke]``) or
via pytest; the CI smoke job includes the timings in
``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.exec.policy import ExecutionPolicy
from repro.experiments import ExperimentSpec, run_experiment, write_report

from bench_utils import experiment_banner

SPEC_PATH = (
    Path(__file__).resolve().parent.parent / "experiments" / "specs" / "smoke.json"
)
#: The cached rerun touches no task at all; requiring 5x headroom keeps
#: the guard robust on slow CI filesystems while still catching any
#: accidental recomputation (which would cost the full first-run time).
MIN_CACHE_SPEEDUP = 5.0


def _time(function, *args, **kwargs):
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return time.perf_counter() - start, value


def test_experiment_smoke_spec_caches_and_reproduces():
    """Second run: zero executions, byte-identical reports, >=5x faster."""
    spec = ExperimentSpec.load(SPEC_PATH)
    with tempfile.TemporaryDirectory(prefix="bench-experiment-") as scratch:
        run_dir = Path(scratch) / "run"
        policy = ExecutionPolicy(workers=2)
        first_seconds, first = _time(run_experiment, spec, run_dir, policy=policy)
        json_path, md_path = write_report(run_dir)
        first_report = (json_path.read_bytes(), md_path.read_bytes())

        second_seconds, second = _time(run_experiment, spec, run_dir, policy=policy)
        json_path, md_path = write_report(run_dir)
        second_report = (json_path.read_bytes(), md_path.read_bytes())

    assert first.executed_total > 0 and first.cached_total == 0
    assert second.executed_total == 0, (
        f"cached rerun executed tasks: {second.executed}"
    )
    assert second.cached_total == first.executed_total
    assert second_report == first_report, "report rendering is not deterministic"

    speedup = first_seconds / max(second_seconds, 1e-9)
    experiment_banner(
        "Experiment orchestration cache",
        f"bundled smoke spec, {first.executed_total} DAG tasks, workers=2",
    )
    print(  # noqa: T201
        f"  first run: {first_seconds * 1000:.1f} ms   "
        f"cached rerun: {second_seconds * 1000:.1f} ms   "
        f"speedup: {speedup:.1f}x"
    )
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cache rerun regressed: {speedup:.2f}x < {MIN_CACHE_SPEEDUP}x "
        f"({first_seconds:.3f}s first vs {second_seconds:.3f}s rerun)"
    )


def main(argv=None) -> int:
    """CLI entry point: ``python benchmarks/bench_experiment.py [--smoke]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced smoke workload (sets REPRO_BENCH_SCALE=smoke)",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    test_experiment_smoke_spec_caches_and_reproduces()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
