"""Shared helpers for the benchmark / experiment-reproduction suite.

Every module in this directory regenerates one table or figure from the
FreqyWM paper (the mapping lives in DESIGN.md §4 and EXPERIMENTS.md). Each
benchmark uses ``benchmark.pedantic(..., rounds=1)`` so the experiment runs
exactly once under timing, and then prints the rows / series the paper
reports so the output can be compared side by side with the publication.

Scale
-----
The paper's synthetic workload is 1 M samples over 1 000 distinct tokens.
Because the watermarking algorithms only consume the token histogram, the
experiments reproduce the paper's *shapes* at a reduced default scale that
runs the full suite in a few minutes. Set ``REPRO_BENCH_SCALE=paper`` to
run at the publication scale (slower), or ``REPRO_BENCH_SCALE=smoke`` for
a quick sanity pass.
"""

from __future__ import annotations

import math
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - environment dependent
        sys.path.insert(0, str(_SRC))


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes used by the experiment reproductions."""

    name: str
    #: Synthetic power-law workload (Figures 2, 4, 5 and the attack studies).
    synthetic_tokens: int
    synthetic_samples: int
    #: Real-dataset stand-ins (Table II).
    taxi_taxis: int
    taxi_trips: int
    clickstream_urls: int
    clickstream_events: int
    adult_rows: int
    #: Baseline comparison (Figure 3).
    baseline_tokens: int
    baseline_samples: int
    #: Repetitions for randomised attack sweeps.
    attack_repetitions: int
    #: Successive watermarks in the Section VI experiment.
    multiwatermark_rounds: int


_SCALES = {
    "smoke": BenchScale(
        name="smoke",
        synthetic_tokens=120,
        synthetic_samples=60_000,
        taxi_taxis=200,
        taxi_trips=20_000,
        clickstream_urls=200,
        clickstream_events=10_000,
        adult_rows=8_000,
        baseline_tokens=200,
        baseline_samples=100_000,
        attack_repetitions=1,
        multiwatermark_rounds=3,
    ),
    "default": BenchScale(
        name="default",
        synthetic_tokens=300,
        synthetic_samples=300_000,
        taxi_taxis=800,
        taxi_trips=80_000,
        clickstream_urls=600,
        clickstream_events=40_000,
        adult_rows=32_000,
        baseline_tokens=500,
        baseline_samples=500_000,
        attack_repetitions=2,
        multiwatermark_rounds=10,
    ),
    "paper": BenchScale(
        name="paper",
        synthetic_tokens=1_000,
        synthetic_samples=1_000_000,
        taxi_taxis=6_573,
        taxi_trips=500_000,
        clickstream_urls=11_479,
        clickstream_events=500_000,
        adult_rows=32_561,
        baseline_tokens=1_000,
        baseline_samples=1_000_000,
        attack_repetitions=5,
        multiwatermark_rounds=10,
    ),
}




def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample (fraction in [0, 1]).

    Nearest-rank (not interpolated) so a 3-iteration p95 is an actual
    observed timing, never an extrapolation beyond the sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def experiment_banner(identifier: str, description: str) -> None:
    """Print a banner naming the paper artefact being regenerated."""
    line = "=" * 78
    print(f"\n{line}\n{identifier}: {description}\n{line}")  # noqa: T201


# --------------------------------------------------------------------------- #
# Benchmark smoke runner (CI)
# --------------------------------------------------------------------------- #

#: Benchmark scripts exercised by the CI smoke job: every figure
#: reproduction plus the engine-scaling guard (whose speedup assertions
#: surface performance regressions per PR), the streaming/sharding
#: guard (chunked-ingestion parity + sharded screening timings), the
#: detection-service guard (cached+coalesced throughput vs one-shot),
#: the batch-embedding guard (embed_many parity + >=3x amortisation
#: over the sequential generator loop), the experiment-orchestration
#: guard (bundled smoke spec: cache-hit rerun + deterministic reports),
#: the vault-attribution guard (candidate-index parity with the
#: linear scan + its speedup floor), the data-plane guard (>=5x
#: bytes-on-wire dedup for shared remote payloads + the local
#: shared-memory dispatch speedup), and the telemetry-overhead guard
#: (disabled spans are free; instrumented dispatch within 3% of raw).
SMOKE_PATTERNS = (
    "bench_fig*.py",
    "bench_engine_scaling.py",
    "bench_streaming.py",
    "bench_service.py",
    "bench_embed_many.py",
    "bench_experiment.py",
    "bench_registry.py",
    "bench_backend.py",
    "bench_exec_dataplane.py",
    "bench_obs_overhead.py",
)


def run_smoke(output, patterns=SMOKE_PATTERNS, repeat: int = 1) -> dict:
    """Run every matching benchmark on tiny inputs and write a JSON report.

    Each script runs in its own pytest subprocess with
    ``REPRO_BENCH_SCALE=smoke`` so the whole sweep finishes in well under a
    minute; per-script wall-clock times and pass/fail states land in
    ``output`` (the CI job uploads it as the ``BENCH_smoke.json``
    artifact, giving every PR a comparable perf trace).

    ``repeat`` reruns each script that many times and reports tail-aware
    per-iteration latency: ``seconds`` is the median (p50) so a single
    scheduler hiccup no longer poisons the baseline, and
    ``p50_seconds`` / ``p95_seconds`` expose the distribution that
    ``tools/compare_bench.py`` prefers when both reports carry it. A
    failing iteration stops that script's repeats early.
    """
    import json
    import subprocess
    import time

    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    bench_dir = Path(__file__).resolve().parent
    scripts = sorted(
        {script for pattern in patterns for script in bench_dir.glob(pattern)}
    )
    environment = dict(os.environ, REPRO_BENCH_SCALE="smoke")
    results = []
    for script in scripts:
        timings = []
        passed = True
        completed = None
        for _iteration in range(repeat):
            start = time.perf_counter()
            completed = subprocess.run(
                [sys.executable, "-m", "pytest", "-q", "-x", script.name],
                cwd=bench_dir,
                env=environment,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            timings.append(time.perf_counter() - start)
            if completed.returncode != 0:
                passed = False
                break
        p50 = percentile(timings, 0.50)
        p95 = percentile(timings, 0.95)
        results.append(
            {
                "benchmark": script.stem,
                "passed": passed,
                "seconds": round(p50, 3),
                "p50_seconds": round(p50, 3),
                "p95_seconds": round(p95, 3),
                "iterations": len(timings),
            }
        )
        status = "ok" if passed else "FAILED"
        print(  # noqa: T201
            f"  {script.stem:<32} p50 {p50:6.1f}s  p95 {p95:6.1f}s  {status}"
        )
        if not passed and completed is not None:
            print(completed.stdout)  # noqa: T201
    report = {
        "scale": "smoke",
        "python": sys.version.split()[0],
        "repeat": repeat,
        "results": results,
        "total_seconds": round(sum(entry["seconds"] for entry in results), 3),
        "failed": sum(1 for entry in results if not entry["passed"]),
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"smoke report written to {output} ({report['total_seconds']}s)")  # noqa: T201
    return report


def main(argv=None) -> int:
    """CLI entry point: ``python benchmarks/bench_utils.py --smoke``."""
    import argparse

    parser = argparse.ArgumentParser(description="Benchmark suite utilities")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run every bench_fig*/engine-scaling script on tiny inputs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_smoke.json",
        help="where to write the JSON smoke report (default: BENCH_smoke.json)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="iterations per script for p50/p95 latency (default 1)",
    )
    arguments = parser.parse_args(argv)
    if not arguments.smoke:
        parser.error("nothing to do: pass --smoke")
    report = run_smoke(arguments.output, repeat=arguments.repeat)
    return 1 if report["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
