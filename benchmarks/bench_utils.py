"""Shared helpers for the benchmark / experiment-reproduction suite.

Every module in this directory regenerates one table or figure from the
FreqyWM paper (the mapping lives in DESIGN.md §4 and EXPERIMENTS.md). Each
benchmark uses ``benchmark.pedantic(..., rounds=1)`` so the experiment runs
exactly once under timing, and then prints the rows / series the paper
reports so the output can be compared side by side with the publication.

Scale
-----
The paper's synthetic workload is 1 M samples over 1 000 distinct tokens.
Because the watermarking algorithms only consume the token histogram, the
experiments reproduce the paper's *shapes* at a reduced default scale that
runs the full suite in a few minutes. Set ``REPRO_BENCH_SCALE=paper`` to
run at the publication scale (slower), or ``REPRO_BENCH_SCALE=smoke`` for
a quick sanity pass.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - environment dependent
        sys.path.insert(0, str(_SRC))


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes used by the experiment reproductions."""

    name: str
    #: Synthetic power-law workload (Figures 2, 4, 5 and the attack studies).
    synthetic_tokens: int
    synthetic_samples: int
    #: Real-dataset stand-ins (Table II).
    taxi_taxis: int
    taxi_trips: int
    clickstream_urls: int
    clickstream_events: int
    adult_rows: int
    #: Baseline comparison (Figure 3).
    baseline_tokens: int
    baseline_samples: int
    #: Repetitions for randomised attack sweeps.
    attack_repetitions: int
    #: Successive watermarks in the Section VI experiment.
    multiwatermark_rounds: int


_SCALES = {
    "smoke": BenchScale(
        name="smoke",
        synthetic_tokens=120,
        synthetic_samples=60_000,
        taxi_taxis=200,
        taxi_trips=20_000,
        clickstream_urls=200,
        clickstream_events=10_000,
        adult_rows=8_000,
        baseline_tokens=200,
        baseline_samples=100_000,
        attack_repetitions=1,
        multiwatermark_rounds=3,
    ),
    "default": BenchScale(
        name="default",
        synthetic_tokens=300,
        synthetic_samples=300_000,
        taxi_taxis=800,
        taxi_trips=80_000,
        clickstream_urls=600,
        clickstream_events=40_000,
        adult_rows=32_000,
        baseline_tokens=500,
        baseline_samples=500_000,
        attack_repetitions=2,
        multiwatermark_rounds=10,
    ),
    "paper": BenchScale(
        name="paper",
        synthetic_tokens=1_000,
        synthetic_samples=1_000_000,
        taxi_taxis=6_573,
        taxi_trips=500_000,
        clickstream_urls=11_479,
        clickstream_events=500_000,
        adult_rows=32_561,
        baseline_tokens=1_000,
        baseline_samples=1_000_000,
        attack_repetitions=5,
        multiwatermark_rounds=10,
    ),
}




def experiment_banner(identifier: str, description: str) -> None:
    """Print a banner naming the paper artefact being regenerated."""
    line = "=" * 78
    print(f"\n{line}\n{identifier}: {description}\n{line}")  # noqa: T201
