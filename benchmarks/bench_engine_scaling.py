"""Engine scaling — vectorized array engine versus the seed dict paths.

Not a paper figure: this benchmark guards the engineering claims of the
array-engine refactor against regression.

* **Budget selection** (the generation-side hot path): the seed knapsack
  recomputed the full similarity metric over all n tokens for every
  candidate pair (O(n·m)); the engine previews each candidate with an
  O(1) incremental-tracker delta. Must be >= 5x faster on a 50k-token
  histogram (acceptance floor; typically far higher).
* **Batch detection**: the seed detector re-derived every pair modulus
  (two SHA-256 per pair) and walked a Python loop per suspected dataset;
  the engine derives moduli once and verifies all pairs of all datasets
  in one vectorized modulo pass. Must be >= 10x faster when screening
  100 suspected datasets.

A scaling sweep over 10k-200k-token histograms prints both paths side by
side. Run directly (``python benchmarks/bench_engine_scaling.py``) or via
pytest.
"""

from __future__ import annotations

import os
import time

from repro.analysis.reporting import format_table
from repro.attacks.sampling import rescale_suspect, subsample_histogram
from repro.core.batch import detect_many
from repro.core.config import DetectionConfig
from repro.core.eligibility import generate_eligible_pairs
from repro.core.knapsack import select_within_budget
from repro.core.matching import vertex_disjoint
from repro.core.reference import detect_reference, select_within_budget_reference
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_histogram
from repro.utils.rng import ensure_rng

from bench_utils import experiment_banner

SECRET = 0x5EED5EED
#: Small cap so plenty of pairs clear the boundary rule on the bench
#: workloads (the speedup ratio is insensitive to z; the work volume is).
MODULUS_CAP = 7
BUDGET = 2.0
#: Token cap for the eligible-pair scan, so setup stays quadratic-bounded.
MAX_CANDIDATES = 500


def _workload(total_tokens: int, distinct_tokens: int):
    """An α=0.5 power-law histogram with ``total_tokens`` occurrences."""
    return generate_power_law_histogram(
        0.5,
        n_tokens=distinct_tokens,
        sample_size=total_tokens,
        mode="sampled",
        rng=20_240,
    )


def _staircase(total_tokens: int, step: int = 2):
    """A histogram of ~``total_tokens`` occurrences with constant rank gaps.

    Every token has boundary slack ``step``, so (unlike heavy-tailed
    samples, whose tail collapses into ties) almost every hashed pair is
    eligible — the worst case for detection volume: many stored pairs.
    """
    from repro.core.histogram import TokenHistogram

    distinct = max(2, int((2 * total_tokens / step) ** 0.5))
    counts = {f"tok{index:05d}": (distinct - index) * step for index in range(distinct)}
    return TokenHistogram.from_counts(counts)


def _time(function, *args, **kwargs):
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return time.perf_counter() - start, value


def _best_time(function, *args, repeats: int = 3, **kwargs):
    """Best-of-``repeats`` wall clock, to shrug off scheduler noise in CI."""
    best = None
    value = None
    for _ in range(repeats):
        seconds, value = _time(function, *args, **kwargs)
        best = seconds if best is None else min(best, seconds)
    return best, value


def _selection_inputs(total_tokens: int, distinct_tokens: int):
    histogram = _workload(total_tokens, distinct_tokens)
    eligible = generate_eligible_pairs(
        histogram, SECRET, MODULUS_CAP, max_candidates=MAX_CANDIDATES
    )
    return histogram, vertex_disjoint(eligible)


def _suspect_batch(histogram, count: int):
    """Subsampled-and-rescaled suspected copies, the Figure 4 defence setup."""
    rng = ensure_rng(77)
    original_size = histogram.total_count()
    suspects = []
    for index in range(count):
        fraction = 0.3 + 0.6 * (index / max(1, count - 1))
        sampled = subsample_histogram(histogram, fraction, rng=rng)
        suspects.append(rescale_suspect(sampled, original_size))
    return suspects


def test_budget_selection_speedup_50k():
    """Engine >= 5x faster than the seed knapsack on a 50k-token histogram."""
    histogram, candidates = _selection_inputs(50_000, 2_000)
    # Warm both paths once (array/backing caches, similarity alignment).
    select_within_budget(histogram, candidates, BUDGET)
    engine_seconds, engine = _best_time(
        select_within_budget, histogram, candidates, BUDGET
    )
    reference_seconds, reference = _best_time(
        select_within_budget_reference, histogram, candidates, BUDGET
    )
    assert engine.selected == reference.selected
    assert engine.rejected == reference.rejected
    speedup = reference_seconds / max(engine_seconds, 1e-9)
    experiment_banner(
        "Engine scaling (generation)",
        "budget selection on a 50k-token histogram, "
        f"{len(candidates)} candidate pairs",
    )
    print(  # noqa: T201
        f"  seed knapsack: {reference_seconds * 1000:.1f} ms   "
        f"engine: {engine_seconds * 1000:.1f} ms   speedup: {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"budget selection speedup regressed: {speedup:.1f}x < 5x "
        f"({reference_seconds:.4f}s -> {engine_seconds:.4f}s)"
    )


def test_batch_detection_speedup_100_datasets():
    """Engine >= 10x faster when screening 100 suspected datasets."""
    histogram = _staircase(100_000)
    eligible = generate_eligible_pairs(histogram, SECRET, MODULUS_CAP)
    candidates = vertex_disjoint(eligible)
    selection = select_within_budget(histogram, candidates, BUDGET)
    assert selection.selected, "workload produced no watermarkable pairs"
    secret = WatermarkSecret.build(
        [item.pair for item in selection.selected], SECRET, MODULUS_CAP
    )
    suspects = _suspect_batch(histogram, 100)
    config = DetectionConfig(pair_threshold=2)
    # Warm both paths (and every suspect's array backing) once.
    detect_many(suspects, secret, config)
    detect_reference(suspects[0], secret, config)
    engine_seconds, report = _best_time(detect_many, suspects, secret, config)
    reference_seconds, _ = _best_time(
        lambda: [detect_reference(suspect, secret, config) for suspect in suspects]
    )
    reference_results = [detect_reference(suspect, secret, config) for suspect in suspects]
    assert [result.accepted for result in report.results] == [
        result.accepted for result in reference_results
    ]
    assert [result.accepted_pairs for result in report.results] == [
        result.accepted_pairs for result in reference_results
    ]
    speedup = reference_seconds / max(engine_seconds, 1e-9)
    experiment_banner(
        "Engine scaling (detection)",
        f"batch detection of {len(suspects)} suspected datasets, "
        f"{len(secret.pairs)} stored pairs",
    )
    print(  # noqa: T201
        f"  seed detector: {reference_seconds * 1000:.1f} ms   "
        f"engine detect_many: {engine_seconds * 1000:.1f} ms   speedup: {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"batch detection speedup regressed: {speedup:.1f}x < 10x "
        f"({reference_seconds:.4f}s -> {engine_seconds:.4f}s)"
    )


def test_scaling_sweep_10k_to_200k():
    """Side-by-side scaling table for 10k-200k-token histograms.

    Under ``REPRO_BENCH_SCALE=smoke`` (the CI smoke job) only the two
    smallest sizes run, keeping the sweep to a few seconds.
    """
    sizes = (10_000, 50_000, 100_000, 200_000)
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke":
        sizes = (10_000, 50_000)
    rows = []
    for total_tokens in sizes:
        histogram = _staircase(total_tokens)
        candidates = vertex_disjoint(
            generate_eligible_pairs(histogram, SECRET, MODULUS_CAP)
        )
        engine_seconds, selection = _best_time(
            select_within_budget, histogram, candidates, BUDGET
        )
        reference_seconds, _ = _best_time(
            select_within_budget_reference, histogram, candidates, BUDGET
        )
        secret = WatermarkSecret.build(
            [item.pair for item in selection.selected], SECRET, MODULUS_CAP
        )
        suspects = _suspect_batch(histogram, 20)
        config = DetectionConfig(pair_threshold=2)
        detect_many(suspects, secret, config)  # warm suspect array caches
        detect_seconds, _ = _best_time(detect_many, suspects, secret, config)
        detect_reference_seconds, _ = _best_time(
            lambda: [detect_reference(suspect, secret, config) for suspect in suspects]
        )
        rows.append(
            {
                "tokens": total_tokens,
                "pairs": len(selection.selected),
                "select_seed_ms": round(reference_seconds * 1000, 1),
                "select_engine_ms": round(engine_seconds * 1000, 1),
                "detect_seed_ms": round(detect_reference_seconds * 1000, 1),
                "detect_engine_ms": round(detect_seconds * 1000, 1),
            }
        )
    experiment_banner(
        "Engine scaling (sweep)",
        "seed vs engine across histogram sizes (20-dataset detection batch)",
    )
    print(  # noqa: T201
        format_table(
            rows,
            columns=[
                "tokens",
                "pairs",
                "select_seed_ms",
                "select_engine_ms",
                "detect_seed_ms",
                "detect_engine_ms",
            ],
        )
    )
    # The engine must never lose to the seed path at any size (generous
    # slack absorbs timer noise at sub-millisecond scales on shared CI
    # runners; the strict ratios are asserted by the two tests above).
    for row in rows:
        assert row["select_engine_ms"] <= row["select_seed_ms"] * 2.0 + 2.0
        assert row["detect_engine_ms"] <= row["detect_seed_ms"] * 2.0 + 2.0


if __name__ == "__main__":
    test_budget_selection_speedup_50k()
    test_batch_detection_speedup_100_datasets()
    test_scaling_sweep_10k_to_200k()
