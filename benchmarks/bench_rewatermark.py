"""Section V-D — re-watermarking / false-claim attack and its resolution.

Paper setting: a pirate runs the normal watermark generation on the owner's
watermarked dataset and claims ownership of the result; the paper reports
that the owner's original watermark is still detected on the pirate's
version with ~92 % of its pairs at t = 0, and resolves the dispute with a
judge protocol. Expected shape here: the owner's watermark survives in the
pirate's copy with a high pair fraction, the pairs the pirate actually had
to modify do not verify on the owner's earlier version, and the dispute is
resolved for the owner once the watermark registry's chronological order is
taken into account (see DESIGN.md for why detection alone can be
ambiguous when the pirate's selection is dominated by already-aligned
pairs).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.attacks.rewatermark import RewatermarkAttack
from repro.core.config import DetectionConfig, GenerationConfig
from repro.dispute.judge import Judge, OwnershipClaim
from repro.dispute.registry import WatermarkRegistry

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131


def _run_rewatermark_attack(reference_watermark) -> dict:
    owner = reference_watermark
    attack = RewatermarkAttack(
        GenerationConfig(budget_percent=BUDGET, modulus_cap=MODULUS_CAP), rng=555
    )
    outcome = attack.run(
        owner.watermarked_histogram,
        owner.secret,
        detection=DetectionConfig(pair_threshold=0),
    )

    registry = WatermarkRegistry()
    registry.register("owner", owner.secret, dataset="published")
    registry.register("pirate", outcome.attacker_result.secret, dataset="pirated")
    verdict = Judge(DetectionConfig(pair_threshold=1), registry=registry).arbitrate(
        [
            OwnershipClaim("owner", owner.secret, owner.watermarked_histogram),
            OwnershipClaim(
                "pirate",
                outcome.attacker_result.secret,
                outcome.attacker_result.watermarked_histogram,
            ),
        ]
    )
    return {
        "owner_pairs": len(owner.secret.pairs),
        "pirate_pairs": len(outcome.attacker_result.secret.pairs),
        "owner_pair_survival_on_pirate_data": outcome.owner_pair_survival,
        "owner_detected_on_pirate_data": outcome.owner_on_attacker_data.accepted,
        "pirate_fraction_on_owner_data": outcome.attacker_on_owner_data.accepted_fraction,
        "pirate_modified_pairs_on_owner_data": outcome.attacker_modified_pair_survival_on_owner,
        "verdict_winner": verdict.winner,
        "verdict_reason": verdict.reason,
    }


def test_rewatermark_false_claim_attack(benchmark, scale, reference_watermark):
    """Regenerate the Section V-D re-watermarking experiment."""
    report = benchmark.pedantic(
        _run_rewatermark_attack, args=(reference_watermark,), rounds=1, iterations=1
    )
    experiment_banner(
        "Section V-D",
        f"re-watermarking / false-claim attack and dispute (scale={scale.name})",
    )
    print(format_table([report]))  # noqa: T201

    # The owner's watermark survives on the pirated version (the paper: ~92%).
    assert report["owner_pair_survival_on_pirate_data"] > 0.5
    assert report["owner_detected_on_pirate_data"]
    # The pairs the pirate actually modified betray its later creation time.
    assert report["pirate_modified_pairs_on_owner_data"] < 0.5
    # The dispute resolves for the genuine owner.
    assert report["verdict_winner"] == "owner"
