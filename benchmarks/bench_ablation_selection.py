"""Ablation — design choices in the pair-selection stage.

Not a paper figure: this benchmark quantifies the two design decisions that
DESIGN.md §6 calls out so their cost/benefit is visible next to the main
results.

1. **Selection strategy** (optimal vs greedy vs random) at the reference
   setting — how many pairs each strategy embeds and how much distortion it
   spends doing so.
2. **require_modification hardening** — how many pairs are lost by refusing
   chance-aligned ("free") pairs, against how much it improves the
   watermark's ability to discriminate the watermarked version from the
   unwatermarked original (the false-positive fraction on the original at
   t = 0).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import GenerationConfig
from repro.core.detector import detect_watermark
from repro.core.generator import WatermarkGenerator

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131


def _ablation(histogram) -> dict:
    strategy_rows = []
    for strategy in ("optimal", "greedy", "random"):
        config = GenerationConfig(
            budget_percent=BUDGET, modulus_cap=MODULUS_CAP, strategy=strategy
        )
        result = WatermarkGenerator(config, rng=21).generate(histogram)
        strategy_rows.append(
            {
                "strategy": strategy,
                "selected_pairs": result.pair_count,
                "total_changes": result.total_changes,
                "distortion_percent": result.distortion_percent,
            }
        )

    hardening_rows = []
    for require_modification in (False, True):
        config = GenerationConfig(
            budget_percent=BUDGET,
            modulus_cap=MODULUS_CAP,
            require_modification=require_modification,
        )
        result = WatermarkGenerator(config, rng=22).generate(histogram)
        on_original = detect_watermark(histogram, result.secret, pair_threshold=0)
        on_watermarked = detect_watermark(
            result.watermarked_histogram, result.secret, pair_threshold=0
        )
        free_pairs = sum(1 for adjustment in result.adjustments if adjustment.cost == 0)
        hardening_rows.append(
            {
                "require_modification": require_modification,
                "selected_pairs": result.pair_count,
                "free_pairs": free_pairs,
                "fp_fraction_on_original": on_original.accepted_fraction,
                "verified_on_watermarked": on_watermarked.accepted_fraction,
                "distortion_percent": result.distortion_percent,
            }
        )
    return {"strategies": strategy_rows, "hardening": hardening_rows}


def test_ablation_selection_design_choices(benchmark, scale, synthetic_histogram):
    """Quantify the selection-strategy and hardening design choices."""
    report = benchmark.pedantic(_ablation, args=(synthetic_histogram,), rounds=1, iterations=1)
    experiment_banner(
        "Ablation",
        f"selection strategy and require_modification hardening (scale={scale.name})",
    )
    print(format_table(report["strategies"], title="Selection strategy"))  # noqa: T201
    print()  # noqa: T201
    print(format_table(report["hardening"], title="require_modification hardening"))  # noqa: T201

    strategies = {row["strategy"]: row for row in report["strategies"]}
    # The optimal strategy embeds at least as many pairs as the heuristics
    # while staying within the same budget.
    assert strategies["optimal"]["selected_pairs"] >= strategies["greedy"]["selected_pairs"]
    assert strategies["optimal"]["distortion_percent"] <= BUDGET

    default_row, hardened_row = report["hardening"]
    # Hardening removes the free pairs...
    assert hardened_row["free_pairs"] == 0
    assert default_row["free_pairs"] >= 0
    # ...which makes the watermark discriminate the original far better...
    assert (
        hardened_row["fp_fraction_on_original"]
        <= default_row["fp_fraction_on_original"] + 1e-9
    )
    assert hardened_row["fp_fraction_on_original"] == 0.0
    # ...while the watermarked version itself still verifies fully.
    assert hardened_row["verified_on_watermarked"] == 1.0
    assert default_row["verified_on_watermarked"] == 1.0
