"""Streaming ingestion and sharded screening — the scale-out subsystem.

Not a paper figure: this benchmark guards the streaming + sharding layer
(PR 2) against functional and performance regression.

* **Streaming ingestion**: a chunked
  :class:`~repro.core.streaming.StreamingHistogramBuilder` pass over the
  token stream must produce a histogram *bit-identical* to the one-shot
  ``TokenHistogram.from_tokens`` build, and must not cost more than a
  small constant factor over it (the Counter-based chunk counting is
  typically faster than the one-shot Python loop).
* **Sharded screening**: the 100-dataset raw-token screening workload —
  where per-dataset histogram building dominates and parallelises — run
  through a 4-worker :class:`~repro.core.sharding.ShardedDetectionPool`
  must return verdicts identical (and identically ordered) to in-process
  ``detect_many``, and must beat it on wall clock when the machine
  actually has cores to shard across.

Run directly (``python benchmarks/bench_streaming.py``) or via pytest;
the CI smoke job includes both timings in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import time

from repro.core.batch import detect_many
from repro.core.config import DetectionConfig
from repro.core.eligibility import generate_eligible_pairs
from repro.core.histogram import TokenHistogram
from repro.core.knapsack import select_within_budget
from repro.core.matching import vertex_disjoint
from repro.core.secrets import WatermarkSecret
from repro.core.sharding import ShardedDetectionPool, default_worker_count
from repro.exec.policy import ExecutionPolicy
from repro.core.streaming import StreamingHistogramBuilder, histogram_from_chunks
from repro.datasets.synthetic import generate_power_law_tokens
from repro.utils.rng import ensure_rng

from bench_utils import experiment_banner

SECRET = 0x5EED5EED
MODULUS_CAP = 7
BUDGET = 2.0
SHARD_WORKERS = 4
SUSPECT_DATASETS = 100


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _time(function, *args, **kwargs):
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return time.perf_counter() - start, value


def _token_stream(sample_size: int):
    return generate_power_law_tokens(
        0.6, n_tokens=1_000, sample_size=sample_size, rng=20_262
    )


def test_streaming_ingestion_parity_and_pace():
    """Chunked ingestion is bit-identical to one-shot and keeps pace."""
    sample_size = 200_000 if _smoke() else 1_000_000
    chunk_size = 20_000
    tokens = _token_stream(sample_size)
    chunks = [tokens[start : start + chunk_size] for start in range(0, len(tokens), chunk_size)]

    one_shot_seconds, one_shot = _time(TokenHistogram.from_tokens, tokens)
    streaming_seconds, streamed = _time(histogram_from_chunks, chunks)

    # Bit-identical: same token order, same count array (ISSUE 2 parity).
    assert streamed == one_shot
    assert streamed.tokens == one_shot.tokens
    assert streamed.counts_array().tolist() == one_shot.counts_array().tolist()

    # Map-reduce merge of two half-stream builders gives the same result.
    left, right = StreamingHistogramBuilder(), StreamingHistogramBuilder()
    for index, chunk in enumerate(chunks):
        (left if index % 2 == 0 else right).add_tokens(chunk)
    assert StreamingHistogramBuilder.merge_all([left, right]).build() == one_shot

    experiment_banner(
        "Streaming ingestion",
        f"{sample_size} occurrences in {len(chunks)} chunks of {chunk_size}",
    )
    print(  # noqa: T201
        f"  one-shot build: {one_shot_seconds * 1000:.1f} ms   "
        f"streaming build: {streaming_seconds * 1000:.1f} ms   "
        f"ratio: {streaming_seconds / max(one_shot_seconds, 1e-9):.2f}x"
    )
    # Chunked ingestion must stay within 2x of one-shot (+2 ms timer slack);
    # the Counter fast path usually makes it faster, not slower.
    assert streaming_seconds <= one_shot_seconds * 2.0 + 0.002, (
        f"streaming ingestion regressed: {streaming_seconds:.4f}s vs "
        f"one-shot {one_shot_seconds:.4f}s"
    )


def _screening_workload(suspect_count: int, suspect_size: int):
    """A secret plus raw-token suspects (histogram build dominates)."""
    base = _token_stream(400_000 if _smoke() else 600_000)
    histogram = TokenHistogram.from_tokens(base)
    candidates = vertex_disjoint(
        generate_eligible_pairs(histogram, SECRET, MODULUS_CAP, max_candidates=400)
    )
    selection = select_within_budget(histogram, candidates, BUDGET)
    assert selection.selected, "workload produced no watermarkable pairs"
    secret = WatermarkSecret.build(
        [item.pair for item in selection.selected], SECRET, MODULUS_CAP
    )
    vocabulary = list(histogram.tokens)
    rng = ensure_rng(99)
    suspects = []
    for _ in range(suspect_count):
        indices = rng.integers(0, len(vocabulary), size=suspect_size)
        # Reuse the vocabulary's str objects so pickle memoisation keeps
        # the dispatch payload small, as a real loader would.
        suspects.append([vocabulary[int(i)] for i in indices])
    return secret, suspects


def test_sharded_screening_100_datasets():
    """4-worker sharded screening: identical verdicts, faster on multi-core."""
    suspect_size = 5_000 if _smoke() else 50_000
    secret, suspects = _screening_workload(SUSPECT_DATASETS, suspect_size)
    config = DetectionConfig(pair_threshold=2)

    in_process_seconds, baseline = _time(detect_many, suspects, secret, config)
    with ShardedDetectionPool(
        secret, config, policy=ExecutionPolicy(workers=SHARD_WORKERS)
    ) as pool:
        pool.detect_many(suspects[:4])  # warm the worker processes
        sharded_seconds, sharded = _time(pool.detect_many, suspects)

    # Verdict parity and ordering: exact, not statistical.
    assert sharded.accepted_flags == baseline.accepted_flags
    assert [result.accepted_pairs for result in sharded.results] == [
        result.accepted_pairs for result in baseline.results
    ]

    cores = default_worker_count()
    speedup = in_process_seconds / max(sharded_seconds, 1e-9)
    experiment_banner(
        "Sharded screening",
        f"{len(suspects)} raw-token suspects x {suspect_size} tokens, "
        f"{len(secret.pairs)} stored pairs, {SHARD_WORKERS} workers",
    )
    print(  # noqa: T201
        f"  in-process detect_many: {in_process_seconds * 1000:.1f} ms   "
        f"sharded: {sharded_seconds * 1000:.1f} ms   "
        f"speedup: {speedup:.2f}x ({cores} cores visible)"
    )
    if cores >= 2 and not _smoke():
        # Asserted only at full scale: the smoke workload (5k-token
        # suspects) is small enough that dispatch overhead can mask the
        # win on a loaded shared runner, and a perf assert that flakes
        # is worse than none. At default/paper scale histogram building
        # dominates and the sharded path must win outright.
        assert speedup > 1.0, (
            f"sharded screening lost to in-process on a {cores}-core machine: "
            f"{in_process_seconds:.3f}s -> {sharded_seconds:.3f}s"
        )
    else:
        print(  # noqa: T201
            "  (speedup assertion gated: needs >=2 visible cores and "
            "full-scale workload; parity asserted above)"
        )


if __name__ == "__main__":
    test_streaming_ingestion_parity_and_pace()
    test_sharded_screening_100_datasets()
