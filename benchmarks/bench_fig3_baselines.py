"""Figure 3 and Section IV-D — FreqyWM versus WM-OBT and WM-RVS.

Paper setting: synthetic α = 0.5 workload (1 k tokens, 1 M samples),
FreqyWM with b = 2 and z = 131, WM-OBT with 20 partitions / bit sequence
[1,1,0,1,0] / change constraint [-0.5, 10], WM-RVS with the same bit
sequence. Reported numbers: cosine similarity of the watermarked histogram
(99.9998 % vs 54.28 % vs 96 %), the mean/std of the introduced changes, and
the number of rank changes (0 vs 998 vs 987 out of 1 000).

Expected shape here: FreqyWM's distortion is orders of magnitude smaller
than both baselines and its ranking is untouched, WM-OBT is by far the most
destructive, and WM-RVS sits in between while still scrambling most ranks.
"""

from __future__ import annotations

from repro.analysis.distortion import distortion_report
from repro.analysis.reporting import format_table
from repro.baselines.genetic import GeneticConfig
from repro.baselines.wm_obt import WmObtConfig, WmObtWatermarker
from repro.baselines.wm_rvs import WmRvsConfig, WmRvsWatermarker
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.datasets.synthetic import generate_power_law_histogram

from bench_utils import experiment_banner

BUDGET = 2.0
MODULUS_CAP = 131


def _compare_watermarking_methods(scale) -> list:
    histogram = generate_power_law_histogram(
        0.5,
        n_tokens=scale.baseline_tokens,
        sample_size=scale.baseline_samples,
        mode="sampled",
        rng=333,
    )
    original = histogram.as_dict()

    freqywm = WatermarkGenerator(
        GenerationConfig(budget_percent=BUDGET, modulus_cap=MODULUS_CAP), rng=5
    ).generate(histogram)

    wm_obt = WmObtWatermarker(
        WmObtConfig(
            n_partitions=20,
            watermark_bits=(1, 1, 0, 1, 0),
            condition=0.75,
            change_bounds=(-0.5, 10.0),
            genetic=GeneticConfig(population_size=30, generations=30),
        ),
        rng=6,
    ).embed(original)

    wm_rvs = WmRvsWatermarker(WmRvsConfig(watermark_bits=(1, 1, 0, 1, 0))).embed(original)

    rows = []
    for method, counts in (
        ("freqywm", freqywm.watermarked_histogram.as_dict()),
        ("wm-obt", wm_obt.watermarked_counts),
        ("wm-rvs", wm_rvs.watermarked_counts),
    ):
        report = distortion_report(original, counts, method=method)
        row = report.as_dict()
        row["total_tokens"] = len(original)
        rows.append(row)
    return rows


def test_fig3_baseline_comparison(benchmark, scale):
    """Regenerate the Figure 3 / Section IV-D comparison."""
    rows = benchmark.pedantic(
        _compare_watermarking_methods, args=(scale,), rounds=1, iterations=1
    )
    experiment_banner(
        "Figure 3 / §IV-D",
        f"FreqyWM vs WM-OBT vs WM-RVS distortion (α=0.5, scale={scale.name})",
    )
    print(  # noqa: T201
        format_table(
            rows,
            columns=[
                "method",
                "similarity_percent",
                "rank_changes",
                "total_tokens",
                "ranking_preserved",
                "mean_change",
                "std_change",
                "max_absolute_change",
            ],
        )
    )

    by_method = {row["method"]: row for row in rows}
    freqywm, wm_obt, wm_rvs = by_method["freqywm"], by_method["wm-obt"], by_method["wm-rvs"]

    # FreqyWM: near-perfect similarity, ranking constraint intact. (A few
    # tokens may become exactly tied with a neighbour, which shuffles the
    # tie-broken rank order without ever inverting a pair of tokens.)
    assert freqywm["similarity_percent"] > 99.9
    assert freqywm["ranking_preserved"]
    assert freqywm["rank_changes"] <= max(2, freqywm["total_tokens"] // 25)
    # WM-OBT: by far the heaviest distortion; ranking destroyed.
    assert wm_obt["similarity_percent"] < wm_rvs["similarity_percent"]
    assert wm_obt["similarity_percent"] < 99.0
    assert not wm_obt["ranking_preserved"]
    assert wm_obt["rank_changes"] > wm_obt["total_tokens"] // 2
    # WM-RVS: intermediate distortion, still scrambles most ranks.
    assert wm_rvs["similarity_percent"] < freqywm["similarity_percent"]
    assert wm_rvs["rank_changes"] > wm_rvs["total_tokens"] // 4
