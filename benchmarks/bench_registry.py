"""Million-secret vault — sublinear leak attribution at marketplace scale.

Not a paper figure: this benchmark guards the candidate-pruning index
behind :meth:`repro.dispute.registry.WatermarkRegistry.attribute_leak`
against functional and performance regression.

* **Parity**: attribution over a vault of ≥100k synthetic buyers (one
  real buyer holding a genuinely embedded watermark, the rest decoys
  with random pair lists over the same vocabulary) must return exactly
  the buyers a full linear :func:`repro.core.batch.detect_many_secrets`
  scan convicts. The index screen is *exact* — bucket acceptance depends
  only on the histogram and the pair's modulus, never on which secret
  owns the pair — so any verdict difference is a bug, not noise.
* **Speedup**: the index-backed attribution must beat the warm-cache
  linear scan by ≥5x at full scale (≥2x in the CI smoke run, where the
  vault is small enough that constant factors blur the gap). The linear
  scan pays a per-secret Python pass to stack pairs and look up
  frequencies; the index pays one vectorized pass over its distinct
  vocabulary and posting lists, so the gap widens with vault size.

Run directly (``python benchmarks/bench_registry.py``) or via pytest;
the CI smoke job includes the timings in ``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.batch import detect_many_secrets
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_histogram
from repro.dispute import WatermarkRegistry

from bench_utils import experiment_banner

SEED = 24
#: Pairs per decoy secret (the paper's secrets carry tens of pairs; 8
#: keeps 100k-buyer vault construction quick without changing the
#: screening shape).
DECOY_PAIRS = 8
MIN_SPEEDUP = 5.0
MIN_SPEEDUP_SMOKE = 2.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"


def _vault_size() -> int:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    return {"smoke": 5_000, "paper": 200_000}.get(scale, 100_000)


def _build_vault(vault_size: int):
    """A registry of one real buyer and ``vault_size - 1`` decoys.

    Returns ``(registry, leaked_histogram, real_buyer)``. Decoy pair
    lists are drawn over the leaked histogram's own vocabulary, so the
    screen cannot shortcut on missing tokens — every bucket is a live
    modulus test, the regime the index must win in.
    """
    rng = np.random.default_rng(SEED)
    histogram = generate_power_law_histogram(
        0.6, n_tokens=400, sample_size=200_000, mode="sampled", rng=rng
    )
    result = WatermarkGenerator(GenerationConfig(strategy="greedy"), rng=SEED).generate(
        histogram
    )
    registry = WatermarkRegistry()
    real_buyer = "buyer-real"
    registry.register(real_buyer, result.secret)

    vocab = sorted(histogram.as_dict())
    modulus_cap = result.secret.modulus_cap
    tokens = np.array(vocab)
    first = rng.integers(0, len(vocab), size=(vault_size - 1, DECOY_PAIRS))
    # A nonzero offset keeps first != second without a rejection loop.
    second = (first + rng.integers(1, len(vocab), size=first.shape)) % len(vocab)
    secret_values = rng.integers(1, 2**63, size=vault_size - 1)
    for decoy in range(vault_size - 1):
        pairs = list(zip(tokens[first[decoy]], tokens[second[decoy]]))
        registry.register(
            f"decoy-{decoy:06d}",
            WatermarkSecret.build(pairs, int(secret_values[decoy]), modulus_cap),
        )
    return registry, result.watermarked_histogram, real_buyer


def test_attribution_parity_and_speedup():
    """Index attribution: verdicts identical to a linear scan, >=5x faster."""
    vault_size = _vault_size()
    config = DetectionConfig(pair_threshold=0, min_accepted_fraction=0.5)

    start = time.perf_counter()
    registry, leaked, real_buyer = _build_vault(vault_size)
    build_seconds = time.perf_counter() - start

    buyers = registry.active_buyers
    secrets = [registry.secret_for(buyer) for buyer in buyers]
    linear_cache = DetectorCache(capacity=None)
    # Warm pass: the linear baseline gets its detectors pre-constructed,
    # so the timed gap measures the scan itself, not cache misses.
    detect_many_secrets(leaked, secrets, config, detector_cache=linear_cache)
    start = time.perf_counter()
    linear_results = detect_many_secrets(
        leaked, secrets, config, detector_cache=linear_cache
    )
    linear_seconds = time.perf_counter() - start
    linear_accepted = {
        buyer for buyer, result in zip(buyers, linear_results) if result.accepted
    }

    # Warm attribution pass mirrors the warm linear pass; the index
    # screen itself is stateless, only detector construction caches.
    registry.attribute_leak(leaked, detection=config)
    start = time.perf_counter()
    matches = registry.attribute_leak(leaked, detection=config)
    index_seconds = time.perf_counter() - start
    stats = registry.last_attribution

    matched = {buyer for buyer, _ in matches}
    assert matched == linear_accepted, (
        f"index attribution diverged from the linear scan: "
        f"{sorted(matched) } vs {sorted(linear_accepted)}"
    )
    assert real_buyer in matched, "the real buyer's leak went unattributed"
    assert stats is not None and stats.mode == "index"
    assert stats.candidates < stats.active_secrets, "index pruned nothing"

    speedup = linear_seconds / max(index_seconds, 1e-9)
    experiment_banner(
        "Vault attribution",
        f"{vault_size} registered buyers, {len(matched)} convicted",
    )
    print(  # noqa: T201
        f"  vault build: {build_seconds:.2f} s   linear scan: "
        f"{linear_seconds:.3f} s   index: {index_seconds:.3f} s   "
        f"speedup: {speedup:.1f}x   candidates: {stats.candidates}/"
        f"{stats.active_secrets}"
    )
    floor = MIN_SPEEDUP_SMOKE if _smoke() else MIN_SPEEDUP
    assert speedup >= floor, (
        f"index attribution regressed below {floor}x: {speedup:.2f}x "
        f"(linear {linear_seconds:.3f}s, index {index_seconds:.3f}s)"
    )


if __name__ == "__main__":
    test_attribution_parity_and_speedup()
