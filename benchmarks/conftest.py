"""Pytest fixtures for the benchmark suite (see bench_utils for scales)."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - environment dependent
        sys.path.insert(0, str(_SRC))

from bench_utils import _SCALES, BenchScale  # noqa: E402


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale, selected via ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def synthetic_histogram(scale):
    """The α = 0.5 reference workload shared by several experiments."""
    from repro.datasets.synthetic import generate_power_law_histogram

    return generate_power_law_histogram(
        0.5,
        n_tokens=scale.synthetic_tokens,
        sample_size=scale.synthetic_samples,
        mode="sampled",
        rng=20_240,
    )


@pytest.fixture(scope="session")
def reference_watermark(scale, synthetic_histogram):
    """The paper's reference watermark (α=0.5, z=131, b=2) used in Section V."""
    from repro.core.config import GenerationConfig
    from repro.core.generator import WatermarkGenerator

    config = GenerationConfig(budget_percent=2.0, modulus_cap=131, strategy="optimal")
    return WatermarkGenerator(config, rng=4_242).generate(synthetic_histogram)
